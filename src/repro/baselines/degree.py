"""Degree-based seeding heuristics (Chen, Wang & Yang, KDD 2009).

Fast heuristics with no approximation guarantee — the trade-off the
paper's related-work section highlights.  All three return seeds in
selection order:

* :func:`high_degree` — top-``k`` out-degree vertices.
* :func:`single_discount` — degree discounted by edges already pointing
  into the chosen set.
* :func:`degree_discount` — the IC-specific discount
  ``d_v - 2 t_v - (d_v - t_v) t_v p`` where ``t_v`` counts chosen
  neighbors; derived for a uniform activation probability ``p``.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph

__all__ = ["high_degree", "single_discount", "degree_discount"]


def _check_k(graph: CSRGraph, k: int) -> None:
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")


def high_degree(graph: CSRGraph, k: int) -> np.ndarray:
    """Top-``k`` vertices by out-degree (ties toward smaller ids)."""
    _check_k(graph, k)
    deg = np.diff(graph.out_indptr)
    # stable sort on (-degree, id): argsort of -deg is stable w.r.t. id
    order = np.argsort(-deg, kind="stable")
    return order[:k].astype(np.int64)


def single_discount(graph: CSRGraph, k: int) -> np.ndarray:
    """SingleDiscount: each neighbor already seeded discounts one edge.

    Iteratively picks the vertex with the highest discounted out-degree,
    then decrements the discounted degree of every in-neighbor of the
    pick (their edge toward the seeded vertex no longer counts).
    """
    _check_k(graph, k)
    deg = np.diff(graph.out_indptr).astype(np.float64)
    chosen = np.zeros(graph.n, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    for i in range(k):
        deg_masked = np.where(chosen, -np.inf, deg)
        v = int(np.argmax(deg_masked))
        seeds[i] = v
        chosen[v] = True
        deg[graph.in_neighbors(v)] -= 1.0
    return seeds


def degree_discount(graph: CSRGraph, k: int, p: float = 0.1) -> np.ndarray:
    """DegreeDiscountIC with uniform activation probability ``p``.

    Maintains ``t_v`` = number of already-seeded in-neighbors of ``v``
    and the discounted degree ``dd_v = d_v - 2 t_v - (d_v - t_v) t_v p``.
    """
    _check_k(graph, k)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    d = np.diff(graph.out_indptr).astype(np.float64)
    t = np.zeros(graph.n, dtype=np.float64)
    dd = d.copy()
    chosen = np.zeros(graph.n, dtype=bool)
    seeds = np.empty(k, dtype=np.int64)
    for i in range(k):
        dd_masked = np.where(chosen, -np.inf, dd)
        v = int(np.argmax(dd_masked))
        seeds[i] = v
        chosen[v] = True
        # Every out-neighbor u of v gains a seeded in-neighbor.
        for u in graph.out_neighbors(v).tolist():
            if chosen[u]:
                continue
            t[u] += 1.0
            dd[u] = d[u] - 2.0 * t[u] - (d[u] - t[u]) * t[u] * p
    return seeds
