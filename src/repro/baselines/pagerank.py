"""PageRank-ranked seeding — the standard centrality baseline.

Power iteration on the column-stochastic transition matrix of the
*reverse* graph is not needed here: influence flows along out-edges, so
we rank by conventional PageRank on the graph as given and take the
top-``k``.  Implemented directly on the CSR arrays (no scipy sparse
matrix construction) with the usual dangling-mass redistribution.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph

__all__ = ["pagerank_seeds", "pagerank_scores"]


def pagerank_scores(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank vector via power iteration (L1-normalized).

    Raises
    ------
    ValueError
        On an invalid damping factor or non-positive tolerance.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    n = graph.n
    if n == 0:
        return np.empty(0, dtype=np.float64)
    out_deg = np.diff(graph.out_indptr).astype(np.float64)
    dangling = out_deg == 0
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    src_of_edge = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.out_indptr))
    dst_of_edge = graph.out_indices.astype(np.int64)
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(out_deg, 1.0))
    for _ in range(max_iter):
        contrib = rank * inv_deg
        new = np.zeros(n, dtype=np.float64)
        np.add.at(new, dst_of_edge, contrib[src_of_edge])
        dangling_mass = rank[dangling].sum() / n
        new = damping * (new + dangling_mass) + (1.0 - damping) / n
        if np.abs(new - rank).sum() < tol:
            rank = new
            break
        rank = new
    return rank


def pagerank_seeds(graph: CSRGraph, k: int, damping: float = 0.85) -> np.ndarray:
    """Top-``k`` vertices by PageRank (ties toward smaller ids)."""
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    scores = pagerank_scores(graph, damping=damping)
    order = np.argsort(-scores, kind="stable")
    return order[:k].astype(np.int64)
