"""Sketch-based influence oracle (Cohen et al., CIKM 2014).

Reference [10] of the paper: *combined reachability sketches* give a
per-node summary that answers influence queries up to two orders of
magnitude faster than Monte-Carlo simulation.  The construction:

1. sample ``ℓ`` live-edge instances of the graph (IC semantics: each
   edge kept with its probability; instance coins are hash-keyed so the
   instances are deterministic in the seed);
2. per instance, draw a uniform random *rank* per vertex and compute,
   for every vertex ``v``, the **bottom-k sketch** of its forward
   reachability set — the ``k`` smallest ranks among vertices reachable
   from ``v``.  Processing vertices in increasing rank order with a
   reverse BFS that prunes at saturated sketches costs ``O(k·m)`` per
   instance (Cohen's classic all-distances-sketch construction);
3. the influence of a seed set ``S`` is estimated per instance from the
   merged bottom-k sketch of its members — exact cardinality when the
   union holds fewer than ``k`` ranks, else the bottom-k estimator
   ``(k-1)/τ_k`` — and averaged over instances.

:func:`skim_seeds` runs greedy selection against the oracle (a compact
variant of Cohen et al.'s SKIM).  The oracle-accuracy and quality tests
live in ``tests/test_baselines_sketches.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph
from ..rng import SplitMix64
from ..sampling.rrr import hash_edge_flips

__all__ = ["ReachabilitySketches", "build_sketches", "skim_seeds"]


@dataclass
class _Instance:
    """One live-edge instance: filtered reverse adjacency + sketches."""

    #: per-vertex rank in [0, 1)
    ranks: np.ndarray
    #: (n, k) array of the k smallest reachable ranks, padded with +inf
    sketches: np.ndarray
    #: number of valid entries per vertex sketch
    counts: np.ndarray


class ReachabilitySketches:
    """Combined bottom-k reachability sketches over ``ℓ`` instances.

    Build with :func:`build_sketches`; query with :meth:`estimate`.
    """

    def __init__(self, n: int, k: int, instances: list[_Instance]) -> None:
        self.n = n
        self.k = k
        self._instances = instances

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    def estimate(self, seeds: np.ndarray) -> float:
        """Estimated expected spread ``E[|I(S)|]`` of ``seeds``.

        Raises
        ------
        ValueError
            On an empty seed set or out-of-range ids.
        """
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds) == 0:
            raise ValueError("need at least one seed")
        if seeds[0] < 0 or seeds[-1] >= self.n:
            raise ValueError("seed id out of range")
        total = 0.0
        k = self.k
        for inst in self._instances:
            merged = np.concatenate(
                [
                    inst.sketches[s, : inst.counts[s]]
                    for s in seeds
                ]
            )
            # Equal ranks identify the same reached vertex (ranks are a
            # per-instance permutation), so dedupe before estimating.
            merged = np.unique(merged)
            if len(merged) < k:
                total += len(merged)
            else:
                tau = merged[k - 1]
                total += (k - 1) / max(tau, 1e-300)
        return total / len(self._instances)


def build_sketches(
    graph: CSRGraph,
    num_instances: int = 32,
    k: int = 16,
    seed: int = 0,
) -> ReachabilitySketches:
    """Build combined reachability sketches for ``graph`` (IC model).

    ``O(num_instances · k · m)`` like the original construction; the
    per-instance edge coins are hash-keyed so the sketch set is a pure
    function of ``(graph, seed)``.

    Raises
    ------
    ValueError
        For non-positive ``num_instances`` or ``k``.
    """
    if num_instances < 1:
        raise ValueError("need at least one instance")
    if k < 2:
        raise ValueError("bottom-k sketches need k >= 2")
    n = graph.n
    master = SplitMix64(seed).split(0x5CEC)
    instances: list[_Instance] = []
    all_slots = np.arange(graph.m, dtype=np.int64)
    for i in range(num_instances):
        inst_stream = master.split(i)
        # Live-edge instance on the *out* CSR (forward reachability).
        coins = hash_edge_flips(inst_stream.seed, all_slots)
        live = coins < graph.out_probs
        # Per-vertex ranks: a random permutation scaled to (0, 1].
        perm = np.argsort(inst_stream.random_block(n), kind="stable")
        ranks = np.empty(n, dtype=np.float64)
        ranks[perm] = (np.arange(n, dtype=np.float64) + 1.0) / n

        sketches = np.full((n, k), np.inf, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        # Reverse adjacency of the live instance: who reaches u in one hop.
        # (in-CSR filtered by the same live mask, which indexes out-CSR
        # slots — map via the shared edge identity.)
        live_in = _in_live_mask(graph, live)
        mark = np.full(n, -1, dtype=np.int64)
        for u in perm:  # increasing rank order
            r = ranks[u]
            # reverse BFS from u, pruning at saturated sketches
            stack = [int(u)]
            mark[u] = u
            while stack:
                v = stack.pop()
                if counts[v] >= k:
                    continue  # saturated: r > all sketch entries; prune
                sketches[v, counts[v]] = r
                counts[v] += 1
                lo, hi = graph.in_indptr[v], graph.in_indptr[v + 1]
                nbrs = graph.in_indices[lo:hi]
                alive = live_in[lo:hi]
                for w in nbrs[alive].tolist():
                    if mark[w] != u:
                        mark[w] = u
                        stack.append(w)
        instances.append(_Instance(ranks=ranks, sketches=sketches, counts=counts))
    return ReachabilitySketches(n, k, instances)


def _in_live_mask(graph: CSRGraph, live_out: np.ndarray) -> np.ndarray:
    """Map the out-CSR live mask onto in-CSR slots (same edge identity:
    out-CSR rank equals the lexicographic (src, dst) rank)."""
    n = graph.n
    dst_of_in = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.in_indptr))
    src_of_in = graph.in_indices.astype(np.int64)
    order = np.lexsort((dst_of_in, src_of_in))  # out-slot r -> in-slot order[r]
    live_in = np.empty(graph.m, dtype=bool)
    live_in[order] = live_out
    return live_in


def skim_seeds(
    graph: CSRGraph,
    k: int,
    num_instances: int = 32,
    sketch_k: int = 16,
    seed: int = 0,
    *,
    sketches: ReachabilitySketches | None = None,
) -> np.ndarray:
    """Greedy seed selection against the sketch oracle (SKIM-style).

    Each of the ``k`` rounds evaluates every remaining candidate's
    estimated joint spread through the oracle — far cheaper than the
    Monte-Carlo greedy, at sketch-estimation accuracy.
    """
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={graph.n}")
    if sketches is None:
        sketches = build_sketches(graph, num_instances, sketch_k, seed)
    chosen: list[int] = []
    remaining = set(range(graph.n))
    for _ in range(k):
        best_v, best_est = -1, -np.inf
        for v in sorted(remaining):
            est = sketches.estimate(np.asarray(chosen + [v]))
            if est > best_est:
                best_v, best_est = v, est
        chosen.append(best_v)
        remaining.discard(best_v)
    return np.asarray(chosen, dtype=np.int64)
