"""Baseline influence-maximization algorithms from the related work.

The paper positions IMM against a decade of prior approaches
(Section 2).  This subpackage implements the ones needed to reproduce
the comparisons and to sanity-check IMM's output quality:

* :func:`greedy_celf` — Kempe et al.'s greedy hill climbing with the
  Monte-Carlo spread oracle, accelerated with Leskovec et al.'s CELF
  lazy evaluation.  Exact same ``(1 - 1/e)`` guarantee; hopeless
  runtime on big graphs — the motivation for RIS-style methods.
* :func:`celf_pp` — Goyal et al.'s CELF++ refinement (tracks the
  next-best candidate to skip re-evaluations).
* :func:`high_degree`, :func:`single_discount`, :func:`degree_discount`
  — the heuristics of Chen et al. (no guarantees; the paper's related
  work notes exactly this trade-off).
* :func:`pagerank_seeds` — PageRank-ranked seeding, a standard
  centrality baseline.
* :func:`ris` — Borgs et al.'s original Reverse Influence Sampling with
  the edge-budget threshold (the precursor IMM replaces with θ
  estimation).
* :func:`tim_plus_theta` — TIM+'s KPT-based θ estimate (Tang et al.
  2014), implemented for the ablation comparing estimator tightness.
* :func:`build_sketches` / :func:`skim_seeds` — Cohen et al.'s combined
  reachability sketches (bottom-k) as an influence oracle, plus a
  SKIM-style greedy on top of it — the "two orders of magnitude"
  speedup route the related work credits to per-node summaries.
"""

from .celf import celf_pp, greedy_celf
from .degree import degree_discount, high_degree, single_discount
from .pagerank import pagerank_seeds
from .ris import ris
from .sketches import ReachabilitySketches, build_sketches, skim_seeds
from .tim import kpt_estimate, tim_plus, tim_plus_theta

__all__ = [
    "greedy_celf",
    "celf_pp",
    "high_degree",
    "single_discount",
    "degree_discount",
    "pagerank_seeds",
    "ris",
    "kpt_estimate",
    "tim_plus",
    "tim_plus_theta",
    "build_sketches",
    "skim_seeds",
    "ReachabilitySketches",
]
