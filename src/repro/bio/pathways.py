"""Synthetic pathway database (the MSIG stand-in of Section 5).

The paper tests the three rankings for statistical enrichment against
MSigDB pathways.  Here the database contains:

* one pathway per *planted module* of the expression dataset (the
  ground-truth "disease" and "housekeeping" pathways), each with a
  little membership noise so enrichment isn't trivially perfect, and
* a configurable number of random decoy pathways.

Because response-module pathways are labeled, the case study can score
not just *how many* pathways each ranking enriches but whether the
*top* enriched pathways are the disease-relevant ones — the paper's
qualitative finding about IMM's specificity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rng import SplitMix64
from .expression import ExpressionDataset

__all__ = ["PathwayDB", "make_pathway_db"]


@dataclass
class PathwayDB:
    """A named collection of feature-id sets.

    Attributes
    ----------
    pathways:
        Mapping name → sorted feature-id array.
    labels:
        Mapping name → ``"response"`` / ``"housekeeping"`` / ``"decoy"``.
    universe_size:
        Total number of features (the Fisher-test universe).
    """

    pathways: dict[str, np.ndarray] = field(default_factory=dict)
    labels: dict[str, str] = field(default_factory=dict)
    universe_size: int = 0

    def names(self) -> list[str]:
        return list(self.pathways)

    def members(self, name: str) -> np.ndarray:
        return self.pathways[name]


def make_pathway_db(
    dataset: ExpressionDataset,
    *,
    response_multiplicity: int = 2,
    housekeeping_multiplicity: int = 3,
    member_fraction: float = 0.7,
    spurious: int = 3,
    num_decoys: int = 30,
    decoy_size: int = 20,
    seed: int = 0,
) -> PathwayDB:
    """Build the pathway database for ``dataset``.

    Every planted module yields several pathways, each a random
    ``member_fraction`` subset of the module's core features plus
    ``spurious`` random features.  Housekeeping modules yield *more*
    pathways than response modules (``housekeeping_multiplicity`` vs
    ``response_multiplicity``) — mirroring real pathway databases, where
    core metabolic and housekeeping biology is covered by many
    overlapping gene sets while disease-response signatures are fewer.
    This multiplicity asymmetry is what lets a housekeeping-concentrated
    ranking (degree) enrich *more* pathways in total even though a
    response-concentrated ranking (IMM) finds the disease-relevant ones
    — the paper's 614-vs-372-vs-159 pattern.

    Decoys are uniform random feature sets.
    """
    if not 0.0 < member_fraction <= 1.0:
        raise ValueError("member_fraction must be in (0, 1]")
    if min(response_multiplicity, housekeeping_multiplicity) < 1:
        raise ValueError("multiplicities must be at least 1")
    rng = np.random.default_rng(SplitMix64(seed).split(0xDB).next_u64())
    db = PathwayDB(universe_size=dataset.num_features)
    num_modules = len(dataset.module_kind)
    for mod in range(num_modules):
        members = dataset.module_members(mod)
        kind = dataset.module_kind[mod]
        copies = (
            response_multiplicity if kind == "response" else housekeeping_multiplicity
        )
        take = max(1, int(round(member_fraction * len(members))))
        for c in range(copies):
            subset = rng.choice(members, size=min(take, len(members)), replace=False)
            extra = rng.choice(dataset.num_features, size=spurious, replace=False)
            merged = np.unique(np.concatenate([subset, extra]))
            name = f"{kind.upper()}_{mod:02d}_{chr(ord('A') + c)}"
            db.pathways[name] = merged.astype(np.int64)
            db.labels[name] = kind
    for d in range(num_decoys):
        members = rng.choice(dataset.num_features, size=decoy_size, replace=False)
        name = f"DECOY_{d:02d}"
        db.pathways[name] = np.sort(members).astype(np.int64)
        db.labels[name] = "decoy"
    return db
