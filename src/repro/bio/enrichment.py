"""Pathway enrichment: Fisher's exact test + Benjamini–Hochberg.

The paper's Section 5 protocol: take the top-200 features of each
ranking, test every pathway for over-representation with Fisher's exact
test, adjust p-values, and count pathways enriched at adjusted
``p < 0.05``.  The one-sided (greater) Fisher p-value equals the
hypergeometric survival probability, computed here with
``scipy.stats.hypergeom`` (exact, no 2x2 table assembly needed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .pathways import PathwayDB

__all__ = ["fisher_exact_greater", "benjamini_hochberg", "enrich", "EnrichmentResult"]


def fisher_exact_greater(
    overlap: int, selected: int, pathway: int, universe: int
) -> float:
    """One-sided Fisher exact p-value for over-representation.

    ``P[X >= overlap]`` with ``X ~ Hypergeom(universe, pathway,
    selected)`` — the probability of seeing at least the observed
    overlap if the selected set were uniform random.
    """
    if min(overlap, selected, pathway) < 0 or universe <= 0:
        raise ValueError("counts must be non-negative and universe positive")
    if overlap > min(selected, pathway):
        raise ValueError("overlap cannot exceed either set size")
    return float(stats.hypergeom.sf(overlap - 1, universe, pathway, selected))


def benjamini_hochberg(pvalues: np.ndarray) -> np.ndarray:
    """BH-adjusted p-values (monotone step-up, clipped at 1)."""
    p = np.asarray(pvalues, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError("pvalues must be 1-D")
    m = len(p)
    if m == 0:
        return p.copy()
    order = np.argsort(p)
    ranked = p[order] * m / np.arange(1, m + 1)
    # enforce monotonicity from the largest rank downward
    adjusted = np.minimum.accumulate(ranked[::-1])[::-1]
    out = np.empty(m, dtype=np.float64)
    out[order] = np.minimum(adjusted, 1.0)
    return out


@dataclass
class EnrichmentResult:
    """Enrichment of one selected feature set against a pathway DB.

    ``table`` rows are ``(pathway, label, overlap, pvalue, adjusted)``,
    sorted by adjusted p-value ascending.
    """

    table: list[tuple[str, str, int, float, float]]
    alpha: float

    @property
    def significant(self) -> list[tuple[str, str, int, float, float]]:
        """Rows with adjusted p below ``alpha``."""
        return [row for row in self.table if row[4] < self.alpha]

    @property
    def num_enriched(self) -> int:
        """The paper's headline count (pathways with adjusted p < alpha)."""
        return len(self.significant)

    def top_labels(self, top: int = 10) -> list[str]:
        """Ground-truth labels of the ``top`` most-enriched pathways —
        the specificity measure of the case study."""
        return [row[1] for row in self.table[:top]]


def enrich(
    selected: np.ndarray,
    db: PathwayDB,
    alpha: float = 0.05,
) -> EnrichmentResult:
    """Test every pathway for over-representation in ``selected``.

    Parameters
    ----------
    selected:
        Feature ids of the ranking's top-k set.
    db:
        The pathway database (defines the universe).
    alpha:
        Adjusted-significance threshold (paper: 0.05).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    selected = np.unique(np.asarray(selected, dtype=np.int64))
    if len(selected) and (selected.min() < 0 or selected.max() >= db.universe_size):
        raise ValueError("selected feature id outside the universe")
    sel_set = set(selected.tolist())
    names = db.names()
    pvals = np.empty(len(names), dtype=np.float64)
    overlaps = np.empty(len(names), dtype=np.int64)
    for i, name in enumerate(names):
        members = db.members(name)
        overlap = sum(1 for f in members.tolist() if f in sel_set)
        overlaps[i] = overlap
        pvals[i] = fisher_exact_greater(
            overlap, len(selected), len(members), db.universe_size
        )
    adjusted = benjamini_hochberg(pvals)
    rows = [
        (names[i], db.labels[names[i]], int(overlaps[i]), float(pvals[i]), float(adjusted[i]))
        for i in range(len(names))
    ]
    rows.sort(key=lambda r: (r[4], r[3], r[0]))
    return EnrichmentResult(table=rows, alpha=alpha)
