"""Synthetic multi-omic expression data with planted module structure.

A dataset is a ``features x samples`` matrix built from latent module
factors plus per-feature *shadow targets*.  Four feature roles create
the centrality/influence contrast the Section 5 comparison needs (and
that the paper observed on real data):

* **response-module cores** (the "cancer pathways" / "moisture-response
  metabolites") — each module follows its own latent factor, the
  factors form a regulatory cascade (module ``i`` partly driven by
  module ``i-1``), and every core feature additionally drives a few
  *tightly correlated* private shadow targets.  In the inferred network
  each response core therefore has its own strong downstream fan-out:
  high, mutually independent influence — the IMM signal.
* **housekeeping-module cores** — tight blocks whose cores drive *many*
  but only *weakly correlated* shadows: top-of-the-list degree, little
  influence per edge — the degree-centrality magnet.
* **shadow targets** — the noisy downstream copies themselves; they
  belong to no pathway.
* **bridge features** — mixtures of two random module factors: high
  betweenness, low pathway coherence.

Everything is deterministic in ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import SplitMix64

__all__ = ["ExpressionDataset", "make_expression_dataset"]


@dataclass(frozen=True)
class ExpressionDataset:
    """A synthetic omics dataset.

    Attributes
    ----------
    values:
        ``(num_features, num_samples)`` expression matrix (z-scored rows).
    feature_names:
        Feature identifiers (``T####`` transcripts; ``P####`` proteins
        for the tumor recipe / ``M####`` metabolites for the soil one).
    module_of:
        Planted module index per feature; ``-1`` for shadow, bridge and
        noise features.
    module_kind:
        Per module: ``"response"`` or ``"housekeeping"``.
    name:
        Dataset label (``"tumor"`` or ``"soil"``).
    """

    values: np.ndarray
    feature_names: list[str]
    module_of: np.ndarray
    module_kind: list[str]
    name: str

    @property
    def num_features(self) -> int:
        return self.values.shape[0]

    @property
    def num_samples(self) -> int:
        return self.values.shape[1]

    def module_members(self, module: int) -> np.ndarray:
        """Feature ids planted in ``module``."""
        return np.flatnonzero(self.module_of == module)


def make_expression_dataset(
    name: str = "tumor",
    *,
    num_response_modules: int = 4,
    num_housekeeping_modules: int = 4,
    module_size: int = 20,
    response_shadows: int = 8,
    housekeeping_shadows: int = 10,
    response_shadow_noise: float = 1.2,
    housekeeping_shadow_noise: float = 1.7,
    num_bridge: int = 150,
    num_noise: int = 150,
    num_samples: int = 60,
    cascade_strength: float = 0.5,
    noise_level: float = 0.9,
    seed: int = 0,
) -> ExpressionDataset:
    """Generate a planted-module expression dataset.

    Parameters
    ----------
    name:
        ``"tumor"`` or ``"soil"`` (naming convention only; structure is
        controlled by the numeric parameters).
    num_response_modules, num_housekeeping_modules, module_size:
        Planted structure dimensions (cores per module).
    response_shadows, housekeeping_shadows:
        Shadow targets per core feature.  Housekeeping cores get *more*
        shadows (higher degree) …
    response_shadow_noise, housekeeping_shadow_noise:
        … but far noisier ones (lower correlation ⇒ lower edge
        probability ⇒ less influence).  These two pairs of knobs create
        the degree-vs-influence dissociation of the case study.
        Response shadows are noisy enough (r² ≈ 0.6) that sibling
        shadows do not inter-correlate strongly (r² ≈ 0.36): the core is
        the only feature with full reach over its cluster, so greedy
        selection prefers cores over shadows — without this, core and
        shadow are statistically interchangeable and the seed set misses
        the pathway members.
    num_bridge, num_noise:
        Counts of bridge features (two-module mixtures) and pure-noise
        features.
    num_samples:
        Experimental samples (columns).
    cascade_strength:
        Fraction of each response factor inherited from the previous
        response module (cross-module reach of response hubs).
    noise_level:
        Core-feature observation noise.
    seed:
        Determinism anchor.
    """
    if module_size < 2:
        raise ValueError("modules need at least two features")
    if num_samples < 4:
        raise ValueError("need at least four samples")
    if not 0.0 <= cascade_strength < 1.0:
        raise ValueError("cascade_strength must be in [0, 1)")
    if min(response_shadows, housekeeping_shadows) < 0:
        raise ValueError("shadow counts must be non-negative")
    rng = np.random.default_rng(SplitMix64(seed).split(0xB10).next_u64())

    num_modules = num_response_modules + num_housekeeping_modules
    factors = np.empty((num_modules, num_samples))
    module_kind: list[str] = []
    # Response cascade: factor_i = c * factor_{i-1} + sqrt(1-c^2) * fresh.
    for i in range(num_response_modules):
        fresh = rng.standard_normal(num_samples)
        if i == 0:
            factors[i] = fresh
        else:
            factors[i] = (
                cascade_strength * factors[i - 1]
                + np.sqrt(1.0 - cascade_strength**2) * fresh
            )
        module_kind.append("response")
    # Housekeeping: independent factors.
    for i in range(num_response_modules, num_modules):
        factors[i] = rng.standard_normal(num_samples)
        module_kind.append("housekeeping")

    core_rows: list[np.ndarray] = []
    shadow_rows: list[np.ndarray] = []
    module_of_cores: list[int] = []
    module_of_shadows: list[int] = []
    for mod in range(num_modules):
        kind = module_kind[mod]
        # Moderate loadings over strong observation noise keep the
        # core-core correlation well below the core-shadow one: the
        # module is a *pathway* (statistical unit), not a clique in
        # the inferred network — which is what lets greedy selection
        # pick many cores of the same pathway (their influence
        # regions are nearly disjoint).
        loadings = np.linspace(0.6, 0.45, module_size)
        block = (
            loadings[:, None] * factors[mod][None, :]
            + noise_level * rng.standard_normal((module_size, num_samples))
        )
        core_rows.append(block)
        module_of_cores.extend([mod] * module_size)
        shadows = response_shadows if kind == "response" else housekeeping_shadows
        shadow_noise = (
            response_shadow_noise if kind == "response" else housekeeping_shadow_noise
        )
        for idx in range(module_size):
            row = block[idx]
            for _ in range(shadows):
                if kind == "housekeeping":
                    # Housekeeping targets answer to *two* regulators of
                    # the block (redundant control, typical of core
                    # metabolism).  The redundancy doubles each core's
                    # out-degree and, by providing alternative shortest
                    # paths, splits the betweenness that a single-parent
                    # star would concentrate on the core.
                    other = int(rng.integers(module_size - 1))
                    other += other >= idx
                    mixed = 0.5 * row + 0.5 * block[other]
                    shadow_rows.append(
                        (mixed + shadow_noise * rng.standard_normal(num_samples))[
                            None, :
                        ]
                    )
                else:
                    shadow_rows.append(
                        (row + shadow_noise * rng.standard_normal(num_samples))[None, :]
                    )
                # Shadows are downstream effects, not pathway members —
                # pathway databases curate the regulators, which keeps the
                # planted pathways small enough for Fisher power.
                module_of_shadows.append(-1)

    # Bridges: equal mixtures of two specific cores from *different*
    # modules, with little extra noise.  Each bridge correlates ~0.7
    # with both parent cores, strongly enough to enter their regulator
    # lists on both sides — so in the inferred network the bridges are
    # the only inter-cluster connections and carry essentially all
    # cross-module shortest paths (high betweenness) while having tiny
    # degree and influence.
    all_cores = np.vstack(core_rows)
    module_of_core_arr = np.asarray(module_of_cores)
    bridge_rows: list[np.ndarray] = []
    for _ in range(num_bridge):
        a, b = rng.choice(num_modules, size=2, replace=False)
        x = rng.choice(np.flatnonzero(module_of_core_arr == a))
        y = rng.choice(np.flatnonzero(module_of_core_arr == b))
        row_x = all_cores[x] / max(np.std(all_cores[x]), 1e-12)
        row_y = all_cores[y] / max(np.std(all_cores[y]), 1e-12)
        bridge_rows.append(
            (0.5 * row_x + 0.5 * row_y + 0.15 * rng.standard_normal(num_samples))[
                None, :
            ]
        )

    rows = core_rows + shadow_rows + bridge_rows
    module_of = list(module_of_cores)
    module_of.extend(module_of_shadows)
    module_of.extend([-1] * num_bridge)
    if num_noise:
        rows.append(rng.standard_normal((num_noise, num_samples)))
        module_of.extend([-1] * num_noise)

    values = np.vstack(rows)
    # z-score rows (standard preprocessing before network inference)
    values = values - values.mean(axis=1, keepdims=True)
    std = values.std(axis=1, keepdims=True)
    values = values / np.maximum(std, 1e-12)

    prefix_b = "M" if name == "soil" else "P"
    feature_names = []
    for i, mod in enumerate(module_of):
        kind = prefix_b if (i % 3 == 0) else "T"
        feature_names.append(f"{kind}{i:04d}")
    return ExpressionDataset(
        values=values,
        feature_names=feature_names,
        module_of=np.asarray(module_of, dtype=np.int64),
        module_kind=module_kind,
        name=name,
    )
