"""Topological centralities used as the Section 5 comparison rankings.

The paper compares IMM against ranking nodes by vertex degree and by
betweenness ("a measure of how many shortest paths linking two random
nodes pass through the node in question").  Betweenness is Brandes'
algorithm (2001) implemented directly on the CSR arrays; the test suite
cross-checks it against networkx.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph import CSRGraph

__all__ = ["degree_centrality", "betweenness_centrality", "top_k"]


def degree_centrality(graph: CSRGraph) -> np.ndarray:
    """Total degree (in + out) per vertex — the paper's "vertex degree"."""
    return (np.diff(graph.out_indptr) + np.diff(graph.in_indptr)).astype(np.float64)


def betweenness_centrality(graph: CSRGraph, *, normalized: bool = True) -> np.ndarray:
    """Brandes' exact betweenness on the directed, unweighted topology.

    O(n·m); fine for the case-study networks (thousands of vertices).
    ``normalized`` divides by ``(n-1)(n-2)`` as networkx does for
    directed graphs.
    """
    n = graph.n
    bc = np.zeros(n, dtype=np.float64)
    indptr = graph.out_indptr
    indices = graph.out_indices
    for s in range(n):
        # single-source shortest paths (BFS) with path counting
        sigma = np.zeros(n, dtype=np.float64)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        order: list[int] = []
        queue: deque[int] = deque([s])
        preds: list[list[int]] = [[] for _ in range(n)]
        while queue:
            v = queue.popleft()
            order.append(v)
            for w in indices[indptr[v] : indptr[v + 1]].tolist():
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    preds[w].append(v)
        # back-propagation of dependencies
        delta = np.zeros(n, dtype=np.float64)
        for w in reversed(order):
            coeff = (1.0 + delta[w]) / sigma[w]
            for v in preds[w]:
                delta[v] += sigma[v] * coeff
            if w != s:
                bc[w] += delta[w]
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2)
    return bc


def top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ties toward smaller ids."""
    if not 1 <= k <= len(scores):
        raise ValueError(f"need 1 <= k <= {len(scores)}, got {k}")
    order = np.argsort(-scores, kind="stable")
    return order[:k].astype(np.int64)
