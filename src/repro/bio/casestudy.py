"""End-to-end Section 5 case study driver.

Pipeline (matching the paper's):

1. build (synthetic) multi-omic expression data with planted modules,
2. infer the GENIE3-like co-expression network,
3. rank features three ways — IMM seed set (size ``k``), top-``k``
   degree, top-``k`` betweenness,
4. run Fisher-exact pathway enrichment for each ranking,
5. report the enriched-pathway counts and the ground-truth labels of
   each ranking's top pathways.

The paper's findings to reproduce in *shape*: IMM's enriched count sits
between betweenness (fewest) and degree (most), while IMM's **top**
pathways are the disease/response ones — degree's top set mixes in
housekeeping blocks and betweenness favors low-coherence bridges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imm import imm
from .centrality import betweenness_centrality, degree_centrality, top_k
from .coexpression import infer_coexpression_network
from .enrichment import EnrichmentResult, enrich
from .expression import ExpressionDataset, make_expression_dataset
from .pathways import PathwayDB, make_pathway_db

__all__ = ["run_case_study", "CaseStudyResult"]


@dataclass
class CaseStudyResult:
    """All outputs of one case-study run."""

    dataset: ExpressionDataset
    db: PathwayDB
    k: int
    imm_seeds: np.ndarray
    degree_top: np.ndarray
    betweenness_top: np.ndarray
    imm_enrichment: EnrichmentResult
    degree_enrichment: EnrichmentResult
    betweenness_enrichment: EnrichmentResult

    def counts(self) -> dict[str, int]:
        """Enriched-pathway count per ranking (the paper's 372/614/159
        comparison)."""
        return {
            "IMM": self.imm_enrichment.num_enriched,
            "degree": self.degree_enrichment.num_enriched,
            "betweenness": self.betweenness_enrichment.num_enriched,
        }

    def top_response_fraction(self, top: int = 10) -> dict[str, float]:
        """Fraction of each ranking's top pathways that are planted
        response ("disease") modules — the specificity comparison."""
        out = {}
        for label, res in (
            ("IMM", self.imm_enrichment),
            ("degree", self.degree_enrichment),
            ("betweenness", self.betweenness_enrichment),
        ):
            labels = res.top_labels(top)
            out[label] = sum(1 for x in labels if x == "response") / max(len(labels), 1)
        return out

    def overlap_with_degree(self) -> float:
        """Fraction of IMM seeds also in the degree top-k (the paper
        reports 9/30 = 30 % on the soil network)."""
        return len(np.intersect1d(self.imm_seeds, self.degree_top)) / self.k


def run_case_study(
    name: str = "tumor",
    k: int = 80,
    eps: float = 0.5,
    seed: int = 0,
    *,
    dataset: ExpressionDataset | None = None,
    alpha: float = 0.05,
    theta_cap: int | None = None,
) -> CaseStudyResult:
    """Run the full Section 5 comparison on one dataset.

    Parameters
    ----------
    name:
        ``"tumor"`` or ``"soil"`` (selects the synthetic dataset recipe;
        ignored if ``dataset`` is supplied).
    k:
        Ranking size (paper: 200 on larger networks; the synthetic
        networks are smaller, so the default is 80 — enough to cover
        every planted response core with room to spill over).
    eps, seed, theta_cap:
        IMM parameters.
    alpha:
        Enrichment significance threshold.
    """
    if dataset is None:
        if name == "soil":
            dataset = make_expression_dataset(
                "soil",
                num_response_modules=3,
                num_housekeeping_modules=3,
                module_size=16,
                num_bridge=80,
                num_noise=100,
                num_samples=48,
                seed=seed + 1,
            )
        else:
            dataset = make_expression_dataset("tumor", seed=seed + 1)
    graph = infer_coexpression_network(dataset)
    if not 1 <= k <= graph.n:
        raise ValueError(f"need 1 <= k <= {graph.n}, got {k}")
    db = make_pathway_db(dataset, seed=seed + 2)

    result = imm(graph, k=k, eps=eps, model="IC", seed=seed, theta_cap=theta_cap)
    deg_top = top_k(degree_centrality(graph), k)
    btw_top = top_k(betweenness_centrality(graph), k)

    return CaseStudyResult(
        dataset=dataset,
        db=db,
        k=k,
        imm_seeds=result.seeds,
        degree_top=deg_top,
        betweenness_top=btw_top,
        imm_enrichment=enrich(result.seeds, db, alpha),
        degree_enrichment=enrich(deg_top, db, alpha),
        betweenness_enrichment=enrich(btw_top, db, alpha),
    )
