"""GENIE3-like co-expression network inference.

GENIE3 (Irrthum et al. 2010, reference [22] of the paper) scores, for
each target feature, the importance of every other feature in a
tree-ensemble regression of the target's expression; the scores become
directed weighted edges ``regulator -> target``.  This module implements
the same *interface contract* — per-target regulator importance scores,
normalized, thresholded to the strongest ``d`` regulators per target —
with correlation-based scores instead of random-forest importances
(which the influence pipeline downstream cannot distinguish; see
DESIGN.md's substitution table).

Edge weights are mapped to activation probabilities in ``(0, p_max]``
proportional to the normalized score, which is how the case study turns
"co-expression strength" into diffusion probability.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph, from_edges
from .expression import ExpressionDataset

__all__ = ["infer_coexpression_network", "regulator_scores"]


def regulator_scores(values: np.ndarray) -> np.ndarray:
    """Per-target regulator importance matrix.

    Parameters
    ----------
    values:
        ``(features, samples)`` z-scored expression matrix.

    Returns
    -------
    ``(features, features)`` array ``S`` with ``S[i, j]`` the importance
    of regulator ``i`` for target ``j``: squared Pearson correlation —
    the variance-explained analogue of a tree-ensemble importance —
    with the diagonal zeroed.  Scores are kept on their absolute scale
    (not per-target normalized) so that uncorrelated noise features do
    not acquire strong edges: a noise target's best "regulator" has
    ``r² ≈ 1/num_samples`` and gets a correspondingly tiny activation
    probability.
    """
    f, s = values.shape
    if s < 2:
        raise ValueError("need at least two samples to correlate")
    corr = (values @ values.T) / s
    scores = np.clip(corr**2, 0.0, 1.0)
    np.fill_diagonal(scores, 0.0)
    return scores


def infer_coexpression_network(
    dataset: ExpressionDataset,
    *,
    regulators_per_target: int = 4,
    p_max: float = 0.35,
) -> CSRGraph:
    """Infer a directed weighted co-expression network.

    For every target, the ``regulators_per_target`` highest-scoring
    regulators gain an edge ``regulator -> target`` whose activation
    probability is ``p_max * r²`` — proportional to the variance the
    regulator explains, so noise-to-noise "edges" are kept (GENIE3 also
    outputs a complete ranking) but carry negligible probability.

    Returns a :class:`~repro.graph.CSRGraph` over the dataset's
    features, ready for :func:`repro.imm.imm`.
    """
    if regulators_per_target < 1:
        raise ValueError("need at least one regulator per target")
    if not 0.0 < p_max <= 1.0:
        raise ValueError(f"p_max must be in (0, 1], got {p_max}")
    scores = regulator_scores(dataset.values)
    f = scores.shape[0]
    d = min(regulators_per_target, f - 1)
    # Top-d regulators per column.
    top = np.argpartition(-scores, d - 1, axis=0)[:d, :]
    src_parts, dst_parts, prob_parts = [], [], []
    for j in range(f):
        regs = top[:, j]
        s = scores[regs, j]
        keep = s > 0
        regs, s = regs[keep], s[keep]
        if len(regs) == 0:
            continue
        probs = p_max * s
        src_parts.append(regs.astype(np.int64))
        dst_parts.append(np.full(len(regs), j, dtype=np.int64))
        prob_parts.append(probs)
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    prob = np.concatenate(prob_parts)
    return from_edges(f, src, dst, prob)
