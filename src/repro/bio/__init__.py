"""Biology case study (Section 5): influence maximization on inferred
co-expression networks.

The paper applies IMM to two multi-omic datasets — a soil-ecosystem
metabolomic/metatranscriptomic study and a tumor proteomic/
transcriptomic cohort — after inferring feature co-expression networks
with GENIE3, then compares IMM's top-200 features against degree and
betweenness centrality through Fisher's-exact-test pathway enrichment.

Neither dataset is publicly reconstructable here, so (per DESIGN.md)
this subpackage builds the closest synthetic equivalent that exercises
the same pipeline end to end:

* :mod:`expression` — synthetic expression matrices with *planted
  functional modules* of three ecological types: disease/response
  modules (cascading cross-module regulation → high influence),
  housekeeping modules (dense, high-degree, self-contained), and bridge
  features (high betweenness, low module coherence).
* :mod:`coexpression` — a GENIE3-like per-target regulator-scoring
  network inference (tree-ensemble importance replaced by normalized
  correlation scores, the part of GENIE3's output the pipeline consumes).
* :mod:`centrality` — degree and Brandes betweenness, the paper's two
  comparison rankings.
* :mod:`enrichment` — Fisher's exact test + Benjamini–Hochberg over a
  pathway database containing the planted modules (so enrichment is
  scoreable against ground truth).
* :mod:`casestudy` — the end-to-end driver reproducing the Section 5
  comparison.
"""

from .casestudy import CaseStudyResult, run_case_study
from .centrality import betweenness_centrality, degree_centrality
from .coexpression import infer_coexpression_network
from .enrichment import EnrichmentResult, benjamini_hochberg, enrich, fisher_exact_greater
from .expression import ExpressionDataset, make_expression_dataset
from .pathways import PathwayDB, make_pathway_db

__all__ = [
    "make_expression_dataset",
    "ExpressionDataset",
    "infer_coexpression_network",
    "degree_centrality",
    "betweenness_centrality",
    "enrich",
    "EnrichmentResult",
    "fisher_exact_greater",
    "benjamini_hochberg",
    "PathwayDB",
    "make_pathway_db",
    "run_case_study",
    "CaseStudyResult",
]
