"""repro — fast and scalable influence maximization (CLUSTER 2019 reproduction).

A faithful, pure-Python reproduction of Minutoli et al., *Fast and
Scalable Implementations of Influence Maximization Algorithms* (IEEE
CLUSTER 2019), the paper behind the Ripples framework.  The package
provides:

* the **IMM** algorithm of Tang et al. (2015) with the paper's optimized
  one-directional sorted RRR-set layout (:func:`repro.imm.imm`);
* the **multithreaded** variant with interval-partitioned,
  synchronization-free seed selection (:func:`repro.parallel.imm_mt`);
* the **distributed** MPI+OpenMP variant with leap-frog RNG streams and
  allreduce-based seed selection (:func:`repro.mpi.imm_dist`);
* IC and LT diffusion models, forward and reverse;
* classic baselines (greedy-CELF Monte Carlo, CELF++, degree discount,
  …) in :mod:`repro.baselines`;
* the Section 5 biology case study in :mod:`repro.bio`;
* the full experiment harness regenerating every table and figure of
  the paper in :mod:`repro.experiments`.

Quickstart::

    from repro import datasets, imm
    graph = datasets.load("cit-HepTh")
    result = imm(graph, k=50, eps=0.5, model="IC", seed=1)
    print(result.seeds, result.total_time)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from . import (
    baselines,
    bio,
    datasets,
    diffusion,
    experiments,
    graph,
    mpi,
    parallel,
    perf,
    rng,
    sampling,
)
from . import imm as imm_pkg  # the subpackage, kept importable by name
from .diffusion import DiffusionModel, estimate_spread
from .graph import CSRGraph
from .imm import IMMResult, imm
from .mpi import imm_dist
from .parallel import imm_mt

__version__ = "1.0.0"

__all__ = [
    "imm",
    "imm_mt",
    "imm_dist",
    "IMMResult",
    "CSRGraph",
    "DiffusionModel",
    "estimate_spread",
    "graph",
    "diffusion",
    "sampling",
    "rng",
    "parallel",
    "mpi",
    "perf",
    "baselines",
    "bio",
    "datasets",
    "experiments",
    "imm_pkg",
    "__version__",
]
