"""Legacy setup shim: enables `pip install -e .` without the `wheel` package.

All metadata lives in pyproject.toml; this file only exists so that
offline environments lacking PEP 517 build frontends can still do an
editable install through `setup.py develop`.
"""

from setuptools import setup

setup()
