"""Quickstart: find influential vertices in a network with IMM.

Runs the full happy path of the library in under a minute:

1. load a registered dataset (a stand-in for SNAP's cit-HepTh),
2. run the IMM algorithm (the paper's optimized serial variant),
3. evaluate the chosen seed set by forward Monte-Carlo simulation,
4. sanity-check against the classic high-degree heuristic.

Run with::

    python examples/quickstart.py
"""

from repro import estimate_spread, imm
from repro.baselines import high_degree
from repro.datasets import load
from repro.graph import graph_stats


def main() -> None:
    graph = load("cit-HepTh", model="IC")
    stats = graph_stats(graph)
    print(f"graph: {stats.nodes} vertices, {stats.edges} edges, "
          f"avg degree {stats.avg_degree:.1f}")

    # k seeds with approximation factor (1 - 1/e - eps), w.h.p.
    result = imm(graph, k=20, eps=0.5, model="IC", seed=42)
    print(f"\nIMM selected {result.k} seeds using theta={result.theta} "
          f"RRR samples in {result.total_time:.2f}s:")
    print(" ", result.seeds.tolist())
    print("phase breakdown:")
    for phase, seconds in result.breakdown.as_dict().items():
        print(f"  {phase:13s} {seconds:7.3f}s")

    spread = estimate_spread(graph, result.seeds, "IC", trials=500, seed=7)
    print(f"\nexpected activated nodes: {spread.mean:.1f} ± {spread.stderr:.2f}")
    print(f"RRR-based estimate:       {result.coverage * graph.n:.1f} "
          "(coverage x n, Section 3.1 estimator)")

    hd = high_degree(graph, 20)
    hd_spread = estimate_spread(graph, hd, "IC", trials=500, seed=7)
    print(f"\nhigh-degree heuristic spread: {hd_spread.mean:.1f} "
          f"(IMM advantage: {spread.mean - hd_spread.mean:+.1f})")


if __name__ == "__main__":
    main()
