"""Section 5 case study: influential features in co-expression networks.

Reproduces the paper's biology application on synthetic multi-omic data
(the real tumor/soil datasets are not redistributable): infer a
GENIE3-like co-expression network, pick the top features by IMM, degree
and betweenness, and compare the three rankings by Fisher-exact pathway
enrichment.

Expected shape (the paper's findings): degree enriches the most
pathways, betweenness the least coherent set, and IMM's *top* pathways
are precisely the planted disease/response modules.

Run with::

    python examples/biology_coexpression.py
"""

from repro.bio import run_case_study


def report(result, name: str) -> None:
    counts = result.counts()
    fracs = result.top_response_fraction(8)
    print(f"== {name} network ==")
    print(f"features: {result.dataset.num_features}, "
          f"pathway DB: {len(result.db.names())} sets")
    print(f"{'ranking':14s} {'enriched(p<.05)':>16s} {'top-8 response frac':>20s}")
    for ranking in ("IMM", "degree", "betweenness"):
        print(f"{ranking:14s} {counts[ranking]:>16d} {fracs[ranking]:>20.2f}")
    print(f"IMM ∩ degree overlap: {result.overlap_with_degree():.0%} "
          "(paper observed ~30% on the soil network)")
    print("\nIMM's most enriched pathways:")
    for pathway, label, overlap, p, adj in result.imm_enrichment.table[:5]:
        print(f"  {pathway:22s} [{label:12s}] overlap={overlap:2d} adj_p={adj:.2e}")
    print("\ndegree's most enriched pathways:")
    for pathway, label, overlap, p, adj in result.degree_enrichment.table[:5]:
        print(f"  {pathway:22s} [{label:12s}] overlap={overlap:2d} adj_p={adj:.2e}")
    print()


def main() -> None:
    tumor = run_case_study("tumor", k=80, eps=0.5, seed=4)
    report(tumor, "tumor (proteomic + transcriptomic)")
    soil = run_case_study("soil", k=40, eps=0.5, seed=4)
    report(soil, "soil (metabolomic + metatranscriptomic)")


if __name__ == "__main__":
    main()
