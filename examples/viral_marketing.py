"""Viral-marketing scenario: budgeted influencer selection.

The motivating application of the paper's introduction: a marketer can
activate ``k`` users ("give them the product"); each activated user may
convince contacts with some probability.  Questions this script
answers on a social-network stand-in:

* how does the expected reach grow with the budget ``k`` (diminishing
  returns — submodularity made visible, the Figure 1 arc)?
* how much better is IMM than cheaper heuristics at equal budget?
* what does the accuracy knob ``eps`` buy (the Figure 1 blue-vs-red
  story: tighter accuracy, better seeds)?

Run with::

    python examples/viral_marketing.py
"""

from repro import estimate_spread, imm
from repro.baselines import degree_discount, high_degree, pagerank_seeds
from repro.datasets import load


def reach(graph, seeds, trials=300, seed=17) -> float:
    return estimate_spread(graph, seeds, "IC", trials=trials, seed=seed).mean


def main() -> None:
    graph = load("soc-Epinions1", model="IC")
    print(f"social network stand-in: n={graph.n}, m={graph.m}\n")

    print("== reach vs budget (eps=0.5) ==")
    print(f"{'k':>4s} {'reach':>8s} {'reach/k':>8s}")
    prev = 0.0
    for k in (1, 2, 5, 10, 20, 40):
        seeds = imm(graph, k=k, eps=0.5, seed=1).seeds
        r = reach(graph, seeds)
        print(f"{k:>4d} {r:>8.1f} {r / k:>8.2f}")
        assert r >= prev - 2.0  # monotone up to MC noise
        prev = r

    k = 20
    print(f"\n== method comparison at k={k} ==")
    contenders = {
        "IMM (eps=0.5)": imm(graph, k=k, eps=0.5, seed=1).seeds,
        "IMM (eps=0.25)": imm(graph, k=k, eps=0.25, seed=1).seeds,
        "degree-discount": degree_discount(graph, k),
        "high-degree": high_degree(graph, k),
        "pagerank": pagerank_seeds(graph, k),
    }
    for name, seeds in contenders.items():
        print(f"  {name:18s} reach = {reach(graph, seeds):7.1f}")

    print("\n== the Figure 1 trade: tighter eps and double budget ==")
    loose = imm(graph, k=k, eps=0.5, seed=1)
    tight = imm(graph, k=2 * k, eps=0.25, seed=1)
    print(f"  baseline  (eps=0.50, k={k:3d}): reach {reach(graph, loose.seeds):7.1f}"
          f"  theta={loose.theta}")
    print(f"  parallel-budget (eps=0.25, k={2*k:3d}): reach {reach(graph, tight.seeds):7.1f}"
          f"  theta={tight.theta}")
    print("  (the parallel implementations make the second configuration "
          "cheaper than the first was for the paper's baseline)")


if __name__ == "__main__":
    main()
