"""Scaling study: one node of Puma, then out to an Edison allocation.

Walks the same path the paper's evaluation does, on a stand-in for
com-Orkut (the largest input):

1. multithreaded strong scaling on one Puma node (Figures 5-6),
2. hybrid MPI+OpenMP scaling on Edison nodes (Figure 8),
3. the memory wall: why small node counts die on the big inputs
   (the Figure 7 OOM gaps), via the per-rank memory model.

All parallel times are modeled machine seconds (see DESIGN.md for the
simulation substitution); the computed seed sets are real and identical
across every configuration.

Run with::

    python examples/cluster_scaling.py
"""

import numpy as np

from repro import imm_dist, imm_mt
from repro.datasets import load
from repro.mpi import SimulatedOOMError
from repro.parallel import EDISON, PUMA

K, EPS, CAP = 20, 0.4, 40_000


def main() -> None:
    graph = load("com-Orkut", model="IC")
    print(f"com-Orkut stand-in: n={graph.n}, m={graph.m}\n")

    print("== multithreaded scaling, one Puma node (IC) ==")
    base = None
    seeds0 = None
    for threads in (1, 2, 4, 8, 16, 20):
        res = imm_mt(graph, k=K, eps=EPS, num_threads=threads, machine=PUMA,
                     seed=3, theta_cap=CAP)
        base = base or res.total_time
        if seeds0 is None:
            seeds0 = res.seeds
        assert np.array_equal(res.seeds, seeds0)  # answer never changes
        print(f"  {threads:2d} threads: {res.total_time:8.4f}s "
              f"(speedup {base / res.total_time:5.2f}x)")

    print("\n== distributed scaling on Edison (hybrid MPI+OpenMP, HT on) ==")
    base = None
    for nodes in (1, 2, 4, 8, 16):
        res = imm_dist(graph, k=K, eps=EPS, num_nodes=nodes, machine=EDISON,
                       seed=3, theta_cap=CAP)
        base = base or res.total_time
        assert np.array_equal(res.seeds, seeds0)
        print(f"  {nodes:4d} nodes ({res.ranks:5d} threads): "
              f"{res.total_time:8.4f}s (speedup {base / res.total_time:5.2f}x, "
              f"comm {res.extra['comm_bytes'] / 1e6:.1f} MB)")

    print("\n== the memory wall (Figure 7's missing points) ==")
    from repro.perf import graph_bytes

    probe = imm_dist(graph, k=K, eps=EPS, num_nodes=8, machine=PUMA,
                     seed=3, theta_cap=CAP)
    total_collection = probe.memory_bytes * 8  # ~per-rank share at p=8
    # A node holds the full graph replica plus its share of R; size the
    # limit so that only >= 4 nodes' aggregate memory fits R.
    fixed = graph_bytes(graph) + 2 * 8 * graph.n
    limit = fixed + int(total_collection / 4)
    print(f"  node memory limit set to {limit / 2**20:.1f} MiB "
          "(scaled to the stand-in)")
    for nodes in (1, 2, 4, 8, 16):
        try:
            imm_dist(graph, k=K, eps=EPS, num_nodes=nodes, machine=PUMA,
                     seed=3, theta_cap=CAP, mem_per_node=limit)
            print(f"  {nodes:2d} nodes: ok")
        except SimulatedOOMError as exc:
            print(f"  {nodes:2d} nodes: OOM killed ({exc})")


if __name__ == "__main__":
    main()
