"""Tests for the recovery-equivalence oracle (repro.validate.recovery)."""

from dataclasses import replace

import pytest

from repro.mpi import imm_dist, initial_deals, rebuild_partition
from repro.validate import (
    check_community_driver,
    check_degraded_accounting,
    check_partitioned_equivalence,
    check_rebuild_fidelity,
    check_recovery_equivalence,
    quick_config,
)


@pytest.fixture(scope="module")
def cfg():
    return replace(
        quick_config(),
        fault_rank_counts=(2,),
        partitioned_ranks=(2,),
        partitioned_samples=15,
    )


class TestRebuildFidelity:
    def test_faithful_rebuild_passes(self, ba_graph):
        deals = initial_deals(2)
        coll, _, _ = rebuild_partition(ba_graph, "IC", deals, 1, 40, seed=5)
        rep = check_rebuild_fidelity(coll, ba_graph, "IC", deals, 1, 40, 5, "t")
        assert rep.ok, rep.violations

    def test_wrong_seed_caught(self, ba_graph):
        deals = initial_deals(2)
        coll, _, _ = rebuild_partition(ba_graph, "IC", deals, 1, 40, seed=6)
        rep = check_rebuild_fidelity(coll, ba_graph, "IC", deals, 1, 40, 5, "t")
        assert any(v.check == "recovery.rebuild-bitwise" for v in rep.violations)


class TestDegradedAccounting:
    @pytest.fixture(scope="class")
    def shrunk(self, ba_graph):
        return imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=3, seed=2, theta_cap=120,
            fault_plan="crash:2@phase=SelectSeeds", policy="shrink",
        )

    def test_honest_run_passes(self, shrunk):
        rep = check_degraded_accounting(shrunk, "t")
        assert rep.ok, rep.violations

    def test_tampered_theta_caught(self, shrunk):
        bad = dict(shrunk.extra)
        bad["theta_effective"] = shrunk.theta
        tampered = replace(shrunk, extra=bad)
        rep = check_degraded_accounting(tampered, "t")
        assert any(
            v.check == "recovery.degraded-accounting" for v in rep.violations
        )

    def test_cleared_flag_caught(self, shrunk):
        bad = dict(shrunk.extra)
        bad["degraded"] = False
        rep = check_degraded_accounting(replace(shrunk, extra=bad), "t")
        assert any(v.check == "recovery.degraded-flag" for v in rep.violations)


class TestOracleAxes:
    def test_recovery_equivalence_clean(self, ba_graph, cfg):
        rep = check_recovery_equivalence(ba_graph, "IC", cfg, "ba")
        assert rep.ok, rep.violations
        # respawn x3 plans (x2 checks + meters), retry x2, straggler x2,
        # shrink late (+accounting) and early, corruption: a real sweep
        assert rep.checks_run >= 15

    def test_partitioned_equivalence_clean(self, ba_graph, cfg):
        rep = check_partitioned_equivalence(ba_graph, cfg, "ba")
        assert rep.ok, rep.violations

    def test_community_driver_clean(self, ba_graph, cfg):
        rep = check_community_driver(ba_graph, "IC", cfg, "ba")
        assert rep.ok, rep.violations
