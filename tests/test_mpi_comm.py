"""Tests for the SPMD runtime and collectives (repro.mpi.comm)."""

import numpy as np
import pytest

from repro.mpi import Allgather, Allreduce, Barrier, Bcast, run_spmd
from repro.mpi.comm import CollectiveMismatchError


class TestAllreduce:
    def test_sum_matches_mpi_semantics(self):
        def program(rank, size):
            local = np.full(4, rank, dtype=np.int64)
            total = yield Allreduce(local)
            return total

        results, stats = run_spmd(4, program)
        expected = [0 + 1 + 2 + 3] * 4
        for r in results:
            assert r.tolist() == expected
        assert stats.calls == 1
        assert stats.payload_bytes == 4 * 8

    def test_max_and_min(self):
        def program(rank, size):
            mx = yield Allreduce(np.array([rank]), op="max")
            mn = yield Allreduce(np.array([rank]), op="min")
            return int(mx[0]), int(mn[0])

        results, _ = run_spmd(3, program)
        assert results == [(2, 0)] * 3

    def test_scalar_allreduce(self):
        def program(rank, size):
            total = yield Allreduce(rank + 1)
            return total

        results, _ = run_spmd(3, program)
        assert results == [6, 6, 6]

    def test_unknown_op_rejected(self):
        def program(rank, size):
            yield Allreduce(np.array([1]), op="prod")

        with pytest.raises(ValueError, match="unknown allreduce op"):
            run_spmd(2, program)

    def test_shape_mismatch_detected(self):
        def program(rank, size):
            yield Allreduce(np.zeros(rank + 1))

        with pytest.raises(CollectiveMismatchError, match="shape"):
            run_spmd(2, program)


class TestOtherCollectives:
    def test_allgather(self):
        def program(rank, size):
            everyone = yield Allgather(rank * 10)
            return everyone

        results, _ = run_spmd(3, program)
        assert results == [[0, 10, 20]] * 3

    def test_allgather_arrays(self):
        def program(rank, size):
            everyone = yield Allgather(np.full(3, rank))
            return [a.tolist() for a in everyone]

        results, _ = run_spmd(2, program)
        assert results == [[[0, 0, 0], [1, 1, 1]]] * 2

    def test_allgather_shape_mismatch_detected(self):
        def program(rank, size):
            yield Allgather(np.zeros(rank + 1))

        with pytest.raises(CollectiveMismatchError, match="allgather shape"):
            run_spmd(2, program)

    def test_allgather_dtype_mismatch_detected(self):
        def program(rank, size):
            yield Allgather(np.zeros(2, dtype=np.int32 if rank else np.int64))

        with pytest.raises(CollectiveMismatchError, match="allgather dtype"):
            run_spmd(2, program)

    def test_allgather_mixed_scalar_array_detected(self):
        def program(rank, size):
            yield Allgather(np.zeros(2) if rank else 7)

        with pytest.raises(CollectiveMismatchError, match="mixes array and scalar"):
            run_spmd(2, program)

    def test_bcast_from_root(self):
        def program(rank, size):
            value = yield Bcast("payload" if rank == 1 else None, root=1)
            return value

        results, _ = run_spmd(3, program)
        assert results == ["payload"] * 3

    def test_bcast_payload_counted_from_root_only(self):
        # Non-root ranks contribute a large dummy; only the root's buffer
        # is what travels, so only it may be metered.
        def program(rank, size):
            payload = np.zeros(2) if rank == 0 else np.zeros(1000)
            yield Bcast(payload, root=0)
            return None

        _, stats = run_spmd(3, program)
        assert stats.payload_bytes == 16
        assert stats.per_call[0].kind == "bcast"

    def test_bcast_mixed_roots_rejected(self):
        def program(rank, size):
            yield Bcast(rank, root=rank % 2)

        with pytest.raises(CollectiveMismatchError, match="roots"):
            run_spmd(2, program)

    def test_barrier(self):
        order = []

        def program(rank, size):
            order.append(("before", rank))
            yield Barrier()
            order.append(("after", rank))
            return rank

        results, _ = run_spmd(2, program)
        assert results == [0, 1]
        # all "before" entries precede all "after" entries
        befores = [i for i, (tag, _) in enumerate(order) if tag == "before"]
        afters = [i for i, (tag, _) in enumerate(order) if tag == "after"]
        assert max(befores) < min(afters)


class TestRuntime:
    def test_multiple_rounds(self):
        def program(rank, size):
            a = yield Allreduce(np.array([rank]))
            b = yield Allreduce(a * 2)
            return int(b[0])

        results, stats = run_spmd(4, program)
        # round 1: sum(0..3) = 6; round 2: sum of 12 over 4 ranks = 48
        assert results == [48] * 4
        assert stats.calls == 2

    def test_no_collectives(self):
        def program(rank, size):
            return rank * rank
            yield  # pragma: no cover - makes this a generator

        results, stats = run_spmd(3, program)
        assert results == [0, 1, 4]
        assert stats.calls == 0

    def test_early_return_detected(self):
        def program(rank, size):
            if rank == 0:
                return 0
            yield Allreduce(np.array([rank]))
            return rank

        with pytest.raises(CollectiveMismatchError, match="hang"):
            run_spmd(2, program)

    def test_mixed_collectives_detected(self):
        def program(rank, size):
            if rank == 0:
                yield Allreduce(np.array([1]))
            else:
                yield Barrier()

        with pytest.raises(CollectiveMismatchError, match="mixed collectives"):
            run_spmd(2, program)

    def test_single_rank(self):
        def program(rank, size):
            total = yield Allreduce(np.array([7]))
            return int(total[0])

        results, _ = run_spmd(1, program)
        assert results == [7]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda r, s: iter(()))

    def test_per_call_ledger(self):
        def program(rank, size):
            yield Allreduce(np.zeros(10))
            yield Barrier()
            return None

        _, stats = run_spmd(2, program)
        assert [call.kind for call in stats.per_call] == ["allreduce", "barrier"]
        assert stats.per_call[0].nbytes == 80
        # unlabeled by default; kind/nbytes stay positionally compatible
        assert stats.per_call[0].label == ""
        assert stats.per_call[0][:2] == ("allreduce", 80)

    def test_per_call_phase_labels(self):
        def program(rank, size):
            stats.set_phase("EstimateTheta")
            yield Allreduce(np.zeros(4))
            stats.set_phase("SelectSeeds")
            yield Allreduce(np.zeros(4))
            return None

        from repro.mpi import CommStats

        stats = CommStats()
        run_spmd(2, program, stats=stats)
        assert [call.label for call in stats.per_call] == [
            "EstimateTheta",
            "SelectSeeds",
        ]
        assert stats.label_totals() == {
            "EstimateTheta": (1, 32),
            "SelectSeeds": (1, 32),
        }
