"""Tests for the SPMD runtime and collectives (repro.mpi.comm)."""

import numpy as np
import pytest

from repro.mpi import Allgather, Allreduce, Barrier, Bcast, run_spmd
from repro.mpi.comm import CollectiveMismatchError


class TestAllreduce:
    def test_sum_matches_mpi_semantics(self):
        def program(rank, size):
            local = np.full(4, rank, dtype=np.int64)
            total = yield Allreduce(local)
            return total

        results, stats = run_spmd(4, program)
        expected = [0 + 1 + 2 + 3] * 4
        for r in results:
            assert r.tolist() == expected
        assert stats.calls == 1
        assert stats.payload_bytes == 4 * 8

    def test_max_and_min(self):
        def program(rank, size):
            mx = yield Allreduce(np.array([rank]), op="max")
            mn = yield Allreduce(np.array([rank]), op="min")
            return int(mx[0]), int(mn[0])

        results, _ = run_spmd(3, program)
        assert results == [(2, 0)] * 3

    def test_scalar_allreduce(self):
        def program(rank, size):
            total = yield Allreduce(rank + 1)
            return total

        results, _ = run_spmd(3, program)
        assert results == [6, 6, 6]

    def test_unknown_op_rejected(self):
        def program(rank, size):
            yield Allreduce(np.array([1]), op="prod")

        with pytest.raises(ValueError, match="unknown allreduce op"):
            run_spmd(2, program)

    def test_shape_mismatch_detected(self):
        def program(rank, size):
            yield Allreduce(np.zeros(rank + 1))

        with pytest.raises(CollectiveMismatchError, match="shape"):
            run_spmd(2, program)


class TestOtherCollectives:
    def test_allgather(self):
        def program(rank, size):
            everyone = yield Allgather(rank * 10)
            return everyone

        results, _ = run_spmd(3, program)
        assert results == [[0, 10, 20]] * 3

    def test_bcast_from_root(self):
        def program(rank, size):
            value = yield Bcast("payload" if rank == 1 else None, root=1)
            return value

        results, _ = run_spmd(3, program)
        assert results == ["payload"] * 3

    def test_bcast_mixed_roots_rejected(self):
        def program(rank, size):
            yield Bcast(rank, root=rank % 2)

        with pytest.raises(CollectiveMismatchError, match="roots"):
            run_spmd(2, program)

    def test_barrier(self):
        order = []

        def program(rank, size):
            order.append(("before", rank))
            yield Barrier()
            order.append(("after", rank))
            return rank

        results, _ = run_spmd(2, program)
        assert results == [0, 1]
        # all "before" entries precede all "after" entries
        befores = [i for i, (tag, _) in enumerate(order) if tag == "before"]
        afters = [i for i, (tag, _) in enumerate(order) if tag == "after"]
        assert max(befores) < min(afters)


class TestRuntime:
    def test_multiple_rounds(self):
        def program(rank, size):
            a = yield Allreduce(np.array([rank]))
            b = yield Allreduce(a * 2)
            return int(b[0])

        results, stats = run_spmd(4, program)
        # round 1: sum(0..3) = 6; round 2: sum of 12 over 4 ranks = 48
        assert results == [48] * 4
        assert stats.calls == 2

    def test_no_collectives(self):
        def program(rank, size):
            return rank * rank
            yield  # pragma: no cover - makes this a generator

        results, stats = run_spmd(3, program)
        assert results == [0, 1, 4]
        assert stats.calls == 0

    def test_early_return_detected(self):
        def program(rank, size):
            if rank == 0:
                return 0
            yield Allreduce(np.array([rank]))
            return rank

        with pytest.raises(CollectiveMismatchError, match="hang"):
            run_spmd(2, program)

    def test_mixed_collectives_detected(self):
        def program(rank, size):
            if rank == 0:
                yield Allreduce(np.array([1]))
            else:
                yield Barrier()

        with pytest.raises(CollectiveMismatchError, match="mixed collectives"):
            run_spmd(2, program)

    def test_single_rank(self):
        def program(rank, size):
            total = yield Allreduce(np.array([7]))
            return int(total[0])

        results, _ = run_spmd(1, program)
        assert results == [7]

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda r, s: iter(()))

    def test_per_call_ledger(self):
        def program(rank, size):
            yield Allreduce(np.zeros(10))
            yield Barrier()
            return None

        _, stats = run_spmd(2, program)
        assert [kind for kind, _ in stats.per_call] == ["allreduce", "barrier"]
        assert stats.per_call[0][1] == 80
