"""Front-end tests (repro.serving.frontend / repro.serving.cache).

The contract under test: every response the front end returns is either
bit-identical to a fresh ``imm()`` run or a typed
:class:`DegradedServingResult` whose ``epsilon_effective`` follows the
shrink arithmetic exactly — under concurrency, overload, deadlines,
injected extension crashes, and mid-flight republish.  The chaos test at
the bottom throws all of those at one front end at once.
"""

import asyncio
import shutil
import time

import numpy as np
import pytest

from repro.imm import imm
from repro.mpi.faults import FaultPlan
from repro.serving import (
    AdmissionRejected,
    CircuitBreaker,
    DegradedServingResult,
    FrozenRRRIndex,
    IndexCache,
    InfluenceQueryEngine,
    QueryDeadlineExceeded,
    ServingFrontend,
    StaleIndexError,
    freeze_index,
    shrink_epsilon,
)

K = 5
EPS = 0.5
SEED = 3
CAP = 300

run = asyncio.run


@pytest.fixture(scope="module")
def frozen(ba_graph, tmp_path_factory):
    """One capped frozen index shared by the in-prefix tests."""
    out = tmp_path_factory.mktemp("frontend") / "index"
    index, res = freeze_index(
        ba_graph, K, EPS, "IC", SEED, theta_cap=CAP, out_dir=out
    )
    index.close()
    return out, res


@pytest.fixture(scope="module")
def uncapped_src(ba_graph, tmp_path_factory):
    """Pristine uncapped index: tighter-eps queries go out-of-prefix."""
    out = tmp_path_factory.mktemp("frontend-uncapped") / "index"
    index, _ = freeze_index(
        ba_graph, K, EPS, "IC", SEED, theta_cap=None, out_dir=out
    )
    frozen_m = index.num_samples
    manifest = dict(index.manifest)
    index.close()
    return out, frozen_m, manifest


@pytest.fixture()
def uncapped(uncapped_src, tmp_path):
    """A throwaway copy — extension tests may grow it on disk."""
    src, frozen_m, manifest = uncapped_src
    dst = tmp_path / "index"
    shutil.copytree(src, dst)
    return dst, frozen_m, manifest


class TestBitIdentity:
    def test_concurrent_batch_matches_fresh(self, ba_graph, frozen):
        out, res = frozen

        async def body():
            async with ServingFrontend(concurrency=3) as fe:
                dup = 3
                batch = await asyncio.gather(
                    *[fe.top_k(out) for _ in range(dup)],
                    fe.what_if(out, K, forced=(int(res.seeds[-1]),)),
                    fe.marginal_gain(out, res.seeds[:2]),
                )
                return batch, fe.stats

        batch, stats = run(body())
        tops, wres, mres = batch[:3], batch[3], batch[4]
        for r in tops:
            assert np.array_equal(r.seeds, res.seeds)
            assert r.theta == res.theta
            assert not r.degraded
        assert int(wres.seeds[0]) == int(res.seeds[-1])
        assert mres.num_samples == res.theta
        assert stats.coalesced == 2  # three identical queries, one run
        assert stats.completed == 5

    def test_what_if_rejects_out_of_range_ids(self, ba_graph, frozen):
        out, _ = frozen

        async def body(**kw):
            async with ServingFrontend() as fe:
                return await fe.what_if(out, K, **kw)

        with pytest.raises(ValueError, match="out of range"):
            run(body(forced=(ba_graph.n,)))
        with pytest.raises(ValueError, match="out of range"):
            run(body(excluded=(-1,)))

    def test_marginal_gain_rejects_out_of_range_ids(self, ba_graph, frozen):
        out, _ = frozen

        async def body(seed_set):
            async with ServingFrontend() as fe:
                return await fe.marginal_gain(out, seed_set)

        with pytest.raises(ValueError, match="out of range"):
            run(body([ba_graph.n + 7]))
        with pytest.raises(ValueError, match="out of range"):
            run(body([-3]))


class TestAdmission:
    def test_overload_sheds_typed(self, frozen):
        out, res = frozen

        async def body():
            fe = ServingFrontend(
                concurrency=1, max_pending=2, fault_plan="slowquery:0x0.05"
            )
            results = await asyncio.gather(
                *[fe.top_k(out) for _ in range(6)], return_exceptions=True
            )
            await fe.close()
            return results, fe.stats

        results, stats = run(body())
        served = [r for r in results if not isinstance(r, BaseException)]
        shed = [r for r in results if isinstance(r, AdmissionRejected)]
        assert len(served) + len(shed) == 6
        assert len(shed) == 4  # queue bound 2: leader + one coalescer
        for exc in shed:
            assert exc.reason == "queue-full"
            assert exc.retry_after > 0
            assert exc.limit == 2
        for r in served:
            assert np.array_equal(r.seeds, res.seeds)
        assert stats.peak_inflight <= 2
        assert stats.admitted == 2 and stats.rejected == 4

    def test_closed_frontend_refuses(self, frozen):
        out, _ = frozen

        async def body():
            fe = ServingFrontend()
            await fe.close()
            with pytest.raises(AdmissionRejected) as ei:
                await fe.top_k(out)
            return ei.value, len(fe.cache)

        exc, cached = run(body())
        assert exc.reason == "shutdown"
        assert cached == 0


class TestDeadline:
    def test_queued_past_deadline_is_shed(self, frozen):
        out, _ = frozen

        async def body():
            fe = ServingFrontend(concurrency=1, fault_plan="slowquery:0x0.2")
            r0, r1 = await asyncio.gather(
                fe.top_k(out),
                fe.what_if(out, K, deadline=0.05),
                return_exceptions=True,
            )
            await fe.close()
            return r0, r1, fe.stats

        r0, r1, stats = run(body())
        assert not isinstance(r0, BaseException)
        assert isinstance(r1, QueryDeadlineExceeded)
        assert r1.deadline == pytest.approx(0.05)
        assert r1.waited >= 0.05
        assert stats.deadline_shed == 1

    def test_rider_deadline_enforced_while_owner_runs(self, frozen):
        """A coalesced rider is shed by its *own* deadline even while
        the deadline-free owner keeps running."""
        out, res = frozen

        async def body():
            fe = ServingFrontend(concurrency=2, fault_plan="slowquery:0x0.3")
            owner, rider = await asyncio.gather(
                fe.top_k(out),
                fe.top_k(out, deadline=0.05),
                return_exceptions=True,
            )
            await fe.close()
            return owner, rider, fe.stats

        owner, rider, stats = run(body())
        assert not isinstance(owner, BaseException)
        assert np.array_equal(owner.seeds, res.seeds)
        assert isinstance(rider, QueryDeadlineExceeded)
        assert rider.deadline == pytest.approx(0.05)
        assert stats.coalesced == 1
        assert stats.deadline_shed == 1

    def test_owner_shed_does_not_shed_deadline_free_rider(self, frozen):
        """The owner's deadline is not the rider's: when the owner sheds
        at the worker, a deadline-free rider re-executes and completes
        instead of inheriting the owner's QueryDeadlineExceeded."""
        out, res = frozen

        async def body():
            fe = ServingFrontend(concurrency=1, fault_plan="slowquery:0x0.2")
            blocker, owner, rider = await asyncio.gather(
                fe.what_if(out, K),            # straggles, holds the worker
                fe.top_k(out, deadline=0.05),  # owner: sheds at the worker
                fe.top_k(out),                 # rider with no deadline
                return_exceptions=True,
            )
            await fe.close()
            return blocker, owner, rider, fe.stats

        blocker, owner, rider, stats = run(body())
        assert not isinstance(blocker, BaseException)
        assert isinstance(owner, QueryDeadlineExceeded)
        assert not isinstance(rider, BaseException), rider
        assert not rider.degraded
        assert np.array_equal(rider.seeds, res.seeds)
        assert stats.coalesced == 1 and stats.deadline_shed == 1

    def test_no_deadline_budget_degrades_instead_of_extending(
        self, ba_graph, uncapped
    ):
        path, frozen_m, _ = uncapped

        async def body():
            fe = ServingFrontend(fault_plan="slowquery:0x0.3")
            r = await fe.top_k(
                path, eps=EPS * 0.5, graph=ba_graph, deadline=0.1
            )
            await fe.close()
            return r, fe.stats

        r, stats = run(body())
        assert isinstance(r, DegradedServingResult)
        assert r.degraded_reason == "deadline"
        assert r.theta_effective == frozen_m
        assert stats.extension_attempts == 0  # never touched the sampler


class TestDegradedHonesty:
    def test_no_graph_out_of_prefix_degrades_with_shrink_eps(
        self, ba_graph, uncapped_src
    ):
        path, frozen_m, mf = uncapped_src

        async def body():
            async with ServingFrontend() as fe:
                deg = await fe.top_k(path, eps=EPS * 0.5)
                ref = await fe.what_if(path, K)  # full-prefix selection
                return deg, ref, fe.stats.degraded

        deg, ref, degraded_count = run(body())
        assert isinstance(deg, DegradedServingResult)
        assert deg.degraded and not ref.degraded
        assert deg.degraded_reason == "no-graph"
        assert deg.theta_effective == frozen_m
        assert deg.theta > deg.theta_effective  # the shortfall is visible
        lb = float(mf["lb"]) if mf.get("lb") is not None else 1.0
        want = shrink_epsilon(ba_graph.n, K, float(mf["l"]), frozen_m, lb)
        assert deg.epsilon_effective == pytest.approx(want, abs=1e-12)
        assert deg.epsilon_effective > EPS * 0.5  # honest: weaker than asked
        assert np.array_equal(deg.seeds, ref.seeds)
        assert degraded_count == 1

    def test_degraded_is_a_type_not_a_flag(self):
        from repro.serving import ServingResult

        assert DegradedServingResult.degraded.fget is not None
        base = ServingResult(
            seeds=np.arange(2), k=2, epsilon=0.5, model="IC", theta=10,
            num_samples_used=10, coverage=0.5, lb=1.0, estimation_rounds=1,
        )
        assert not base.degraded


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        t = [0.0]
        brk = CircuitBreaker(threshold=2, cooldown=10.0, clock=lambda: t[0])
        assert brk.allow()
        assert not brk.record_failure()
        assert brk.record_failure()  # second failure trips
        assert brk.state == "open" and brk.trips == 1
        assert not brk.allow()
        t[0] = 10.0  # cooldown elapsed: one probe allowed
        assert brk.allow()
        assert brk.state == "half-open"
        brk.record_success()
        assert brk.state == "closed" and brk.failures == 0

    def test_half_open_failure_reopens(self):
        t = [0.0]
        brk = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: t[0])
        brk.record_failure()
        t[0] = 5.0
        assert brk.allow() and brk.state == "half-open"
        brk.record_failure()  # the probe died: straight back to open
        assert brk.state == "open" and brk.trips == 2
        assert not brk.allow()

    def test_extension_crashes_trip_breaker(self, ba_graph, uncapped):
        path, _, _ = uncapped

        async def body():
            fe = ServingFrontend(
                fault_plan="extendfail:@0x8",
                breaker_threshold=2,
                breaker_cooldown=600.0,
            )
            outcomes = []
            for i in range(3):
                r = await fe.top_k(
                    path, eps=EPS * 0.5 * (1.0 - 0.02 * i), graph=ba_graph
                )
                outcomes.append(r.degraded_reason)
            state = fe.breaker(path).state
            await fe.close()
            return outcomes, state, fe.stats

        outcomes, state, stats = run(body())
        assert outcomes == ["extension-failed", "extension-failed", "breaker-open"]
        assert state == "open"
        # once open, the sampler was NOT touched again:
        assert stats.extension_attempts == 2
        assert stats.extension_failures == 2
        assert stats.breaker_trips == 1

    def test_half_open_probe_recovers(self, ba_graph, uncapped):
        path, frozen_m, _ = uncapped

        async def body():
            fe = ServingFrontend(
                fault_plan="extendfail:@0x1",
                breaker_threshold=1,
                breaker_cooldown=0.0,  # probe allowed immediately
            )
            first = await fe.top_k(path, eps=EPS * 0.5, graph=ba_graph)
            second = await fe.top_k(path, eps=EPS * 0.6, graph=ba_graph)
            state = fe.breaker(path).state
            await fe.close()
            return first, second, state, fe.stats

        first, second, state, stats = run(body())
        assert isinstance(first, DegradedServingResult)
        assert not second.degraded  # the probe extension succeeded
        assert second.theta > frozen_m
        assert state == "closed"
        assert stats.breaker_trips == 1 and stats.extension_attempts == 2


class TestExtensionTimeout:
    def test_timed_out_extension_keeps_bulkhead_until_thread_exits(
        self, ba_graph, uncapped, monkeypatch
    ):
        """A deadline firing mid-extension must not release the
        single-writer bulkhead while the worker thread is still
        appending: the caller degrades immediately, the leaked thread is
        adopted (writer lock + cache pin held until it exits), and a
        follow-up extension serializes behind it instead of interleaving
        — afterwards the on-disk index still opens and seals, and the
        next answer is bit-identical to a fresh ``imm()``."""
        path, frozen_m, _ = uncapped
        real = InfluenceQueryEngine._ensure_samples
        slept = []

        def slow(self, target, allow_extend):
            if allow_extend and not slept and target > self.index.num_samples:
                slept.append(target)
                time.sleep(0.3)  # outlives the caller's 0.1s deadline
            return real(self, target, allow_extend)

        monkeypatch.setattr(InfluenceQueryEngine, "_ensure_samples", slow)
        tight = EPS * 0.45
        want = imm(
            ba_graph, K, tight, "IC", seed=SEED, layout="sorted",
            theta_cap=None,
        )

        async def body():
            fe = ServingFrontend()
            first = await fe.top_k(
                path, eps=EPS * 0.5, graph=ba_graph, deadline=0.1
            )
            # The leaked thread still holds the bulkhead: this second
            # extension must wait for it, then append past the grown
            # prefix — never interleave with the leaked append.
            second = await fe.top_k(path, eps=tight, graph=ba_graph)
            await fe.close()
            return first, second, fe.stats, len(fe._reapers)

        first, second, stats, reapers_left = run(body())
        assert isinstance(first, DegradedServingResult)
        assert first.degraded_reason == "extension-timeout"
        assert first.theta_effective == frozen_m
        assert stats.extension_failures == 1
        assert not second.degraded
        assert np.array_equal(second.seeds, want.seeds)
        assert second.theta == want.theta
        assert reapers_left == 0  # close() joined the adopted writer
        # Both appends landed coherently: the re-opened index seals.
        with FrozenRRRIndex.open(path) as index:
            assert index.num_samples > frozen_m


class TestRepublish:
    def test_post_republish_query_does_not_ride_stale_execution(
        self, ba_graph, uncapped, tmp_path
    ):
        """Coalescing is keyed by index *identity*: a query admitted
        after an on-disk republish must start its own execution against
        the new index, never ride one in flight against the old."""
        path, _, _ = uncapped

        async def body():
            fe = ServingFrontend(concurrency=2, fault_plan="slowquery:0x0.3")
            owner = asyncio.ensure_future(fe.top_k(path))  # qid 0 straggles
            await asyncio.sleep(0.1)  # owner is in flight
            # Republish behind it: same path, different identity.
            v2 = tmp_path / "v2"
            index, res2 = freeze_index(
                ba_graph, K, 0.6, "IC", SEED, theta_cap=CAP, out_dir=v2
            )
            index.close()
            shutil.rmtree(path)
            shutil.copytree(v2, path)
            fresh = await fe.top_k(path)
            old = await owner
            await fe.close()
            return fresh, old, res2, fe.stats

        fresh, old, res2, stats = run(body())
        assert stats.coalesced == 0  # identity key kept them apart
        assert fresh.epsilon == pytest.approx(0.6)
        assert np.array_equal(fresh.seeds, res2.seeds)
        assert not isinstance(old, BaseException)
    def test_stale_mid_flight_redispatches_bit_identically(self, frozen):
        out, res = frozen

        async def body():
            fe = ServingFrontend(fault_plan="stale:@0")
            r = await fe.top_k(out)
            misses = fe.cache.misses
            await fe.close()
            return r, misses, fe.stats

        r, misses, stats = run(body())
        assert not r.degraded
        assert np.array_equal(r.seeds, res.seeds)
        assert stats.republishes == 1
        assert misses == 2  # original open + hot re-open

    def test_redispatch_is_at_most_once(self, frozen):
        out, _ = frozen

        async def body():
            fe = ServingFrontend(fault_plan="stale:@0;stale:@0")
            try:
                await fe.top_k(out)
            finally:
                await fe.close()

        # A second republish under the same query must surface, not loop.
        with pytest.raises(StaleIndexError):
            run(body())


class TestTighten:
    def test_tighten_extends_and_rekeys_in_place(self, ba_graph, uncapped):
        path, frozen_m, _ = uncapped
        tight = EPS * 0.8
        want = imm(
            ba_graph, K, tight, "IC", seed=SEED, layout="sorted",
            theta_cap=None,
        )

        async def body():
            fe = ServingFrontend(concurrency=2)
            t = await fe.tighten(path, tight, graph=ba_graph)
            again = await fe.top_k(path, eps=tight)  # in the new prefix
            hits, misses = fe.cache.hits, fe.cache.misses
            await fe.close()
            return t, again, hits, misses

        t, again, hits, misses = run(body())
        assert not t.degraded
        assert t.theta > frozen_m
        assert np.array_equal(t.seeds, want.seeds)
        assert t.theta == want.theta
        assert np.array_equal(again.seeds, want.seeds)
        # the amended manifest re-keyed the live entry, not a reopen:
        assert misses == 1 and hits >= 1


class TestIndexCache:
    def test_lease_pins_against_eviction(self, frozen, uncapped):
        path_a, _ = frozen
        path_b, _, _ = uncapped
        cache = IndexCache(capacity=1)
        with cache.lease(path_a) as ea:
            with cache.lease(path_b) as eb:
                # both stay mapped despite capacity 1:
                assert ea.index._flat is not None
                assert eb.index._flat is not None
                assert len(cache) == 2
        cache.close()

    def test_invalidate_defers_close_until_release(self, frozen):
        path, res = frozen
        cache = IndexCache(capacity=2)
        with cache.lease(path) as eng:
            cache.invalidate(path)
            # still queryable mid-lease — close is deferred:
            r = eng.what_if(K)
            assert np.array_equal(r.seeds, res.seeds)
            assert eng.index._flat is not None
        assert eng.index._flat is None  # last lease out: now closed
        cache.close()

    def test_republish_behind_engine_retires_it(self, ba_graph, uncapped, tmp_path):
        path, _, _ = uncapped
        cache = IndexCache(capacity=2)
        old = cache.engine(path)
        # Re-freeze at a different eps *behind* the open engine: the
        # on-disk identity changes while the mapped one does not.
        v2 = tmp_path / "v2"
        index, _ = freeze_index(
            ba_graph, K, 0.6, "IC", SEED, theta_cap=CAP, out_dir=v2
        )
        index.close()
        shutil.rmtree(path)
        shutil.copytree(v2, path)
        new = cache.engine(path)
        assert new is not old
        assert cache.misses == 2
        assert old.index._flat is None  # unpinned: retired and closed
        assert new.index._flat is not None
        cache.close()


class TestFaultGrammar:
    def test_serving_tokens_parse_and_fire_once(self):
        plan = FaultPlan.parse("slowquery:3x0.2;stale:@1;extendfail:@0x2")
        inj = plan.injector()
        assert inj.query_delay(3) == pytest.approx(0.2)
        assert inj.query_delay(3) == 0.0  # one-shot
        assert inj.query_delay(0) == 0.0
        assert inj.stale_due(1) is True
        assert inj.stale_due(1) is False  # consumed: re-dispatch succeeds
        assert inj.extend_failure() is True  # attempt 0
        assert inj.extend_failure() is True  # attempt 1
        assert inj.extend_failure() is False  # attempt 2
        assert inj.extension_attempts == 3

    def test_defaults_and_describe(self):
        plan = FaultPlan.parse("slowquery:2")
        inj = plan.injector()
        assert inj.query_delay(2) == pytest.approx(0.05)
        text = FaultPlan.parse("slowquery:0x0.1;stale:@4;extendfail:@1").describe()
        assert "query 0" in text and "query 4" in text
        assert "extension" in text


class TestChaos:
    def test_faulted_concurrent_traffic_keeps_the_contract(
        self, ba_graph, frozen, uncapped_src, uncapped
    ):
        """Everything at once: coalescing traffic, injected extension
        crashes, a mid-flight republish, and a no-graph degrade.  Every
        completed answer must be bit-identical or typed-degraded with
        shrink-arithmetic accounting, and the front end must quiesce
        clean.

        The deadline query targets the pristine uncapped index so its
        per-path circuit breaker stays independent of the one the
        extension crashes trip on the throwaway copy.
        """
        capped, res = frozen
        nopath, _, _ = uncapped_src
        path, frozen_m, mf = uncapped
        l, lb = float(mf["l"]), float(mf["lb"] if mf.get("lb") is not None else 1.0)

        async def body():
            fe = ServingFrontend(
                concurrency=4,
                max_pending=16,
                fault_plan="extendfail:@0x2;stale:@3;slowquery:3x0.2",
                breaker_threshold=2,
                breaker_cooldown=600.0,
            )
            results = await asyncio.gather(
                fe.top_k(capped),                             # qid 0
                fe.top_k(capped),                             # qid 1 (coalesces)
                fe.what_if(capped, K, forced=(int(res.seeds[0]),)),
                fe.top_k(                                     # qid 3: straggles
                    nopath, eps=EPS * 0.5, graph=ba_graph, deadline=0.08
                ),                                            # past its deadline
                fe.top_k(path, eps=EPS * 0.45, graph=ba_graph),  # extendfail
                fe.top_k(path, eps=EPS * 0.40, graph=ba_graph),  # extendfail
                fe.top_k(path, eps=EPS * 0.35, graph=ba_graph),  # breaker open
                fe.marginal_gain(capped, res.seeds[:2]),
                return_exceptions=True,
            )
            await fe.close()
            leaked = len(fe.cache), dict(fe._coalesced), fe._inflight
            with pytest.raises(AdmissionRejected) as ei:
                await fe.top_k(capped)
            return results, fe.stats, leaked, ei.value.reason

        results, stats, (cached, coalesced_futs, inflight), reason = run(body())

        unexpected = [
            r for r in results
            if isinstance(r, BaseException)
            and not isinstance(r, (AdmissionRejected, QueryDeadlineExceeded))
        ]
        assert not unexpected, unexpected

        # In-prefix capped answers: bit-identical to the freeze-time run.
        for r in (results[0], results[1]):
            assert not r.degraded
            assert np.array_equal(r.seeds, res.seeds)
        assert int(results[2].seeds[0]) == int(res.seeds[0])
        assert results[7].num_samples == res.theta

        # Out-of-prefix answers: typed-degraded with honest accounting.
        reasons = []
        for r in results[3:7]:
            assert isinstance(r, DegradedServingResult), r
            assert r.theta_effective == frozen_m
            want = shrink_epsilon(ba_graph.n, r.k, l, r.theta_effective, r.lb)
            assert r.epsilon_effective == pytest.approx(want, abs=1e-12)
            reasons.append(r.degraded_reason)
        assert reasons[0] == "deadline"
        assert reasons.count("extension-failed") == 2
        assert "breaker-open" in reasons[1:]

        # The faults actually fired where addressed.
        assert stats.republishes == 1
        assert stats.extension_attempts == 2
        assert stats.breaker_trips == 1
        assert stats.degraded == 4

        # Clean quiesce: nothing leaked, further traffic refused typed.
        assert cached == 0
        assert coalesced_futs == {}
        assert inflight == 0
        assert reason == "shutdown"
