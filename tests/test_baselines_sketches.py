"""Tests for the sketch-based influence oracle (repro.baselines.sketches)."""

import numpy as np
import pytest

from repro.baselines import build_sketches, skim_seeds
from repro.diffusion import estimate_spread
from repro.graph import (
    barabasi_albert,
    constant_weights,
    path_graph,
    star_graph,
    uniform_random_weights,
)


@pytest.fixture(scope="module")
def small_graph():
    return uniform_random_weights(barabasi_albert(80, 2, seed=3), seed=2, scale=0.4)


class TestBuildSketches:
    def test_deterministic(self, small_graph):
        a = build_sketches(small_graph, num_instances=4, k=8, seed=1)
        b = build_sketches(small_graph, num_instances=4, k=8, seed=1)
        assert a.estimate(np.array([0, 5])) == b.estimate(np.array([0, 5]))

    def test_deterministic_cascade_exact(self):
        # p = 1 path: Reach(v) is exact and small, so estimates are exact.
        g = constant_weights(path_graph(6), 1.0)
        sk = build_sketches(g, num_instances=2, k=8, seed=1)
        assert sk.estimate(np.array([0])) == pytest.approx(6.0)
        assert sk.estimate(np.array([5])) == pytest.approx(1.0)
        assert sk.estimate(np.array([3])) == pytest.approx(3.0)

    def test_p_zero_graph(self):
        g = constant_weights(star_graph(10), 0.0)
        sk = build_sketches(g, num_instances=2, k=4, seed=1)
        assert sk.estimate(np.array([0])) == pytest.approx(1.0)

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            build_sketches(small_graph, num_instances=0)
        with pytest.raises(ValueError):
            build_sketches(small_graph, k=1)


class TestOracle:
    def test_matches_monte_carlo(self, small_graph):
        """The paper's related work: sketches answer influence queries at
        simulation-level accuracy.  Compare against 600 MC trials."""
        sk = build_sketches(small_graph, num_instances=48, k=24, seed=1)
        for seeds in (np.array([0]), np.array([0, 1, 2]), np.array([10, 30, 50])):
            est = sk.estimate(seeds)
            mc = estimate_spread(small_graph, seeds, "IC", trials=600, seed=5).mean
            assert est == pytest.approx(mc, rel=0.30, abs=2.5)

    def test_monotone_in_seeds(self, small_graph):
        sk = build_sketches(small_graph, num_instances=16, k=16, seed=1)
        single = sk.estimate(np.array([0]))
        double = sk.estimate(np.array([0, 1]))
        assert double >= single - 1e-9

    def test_validation(self, small_graph):
        sk = build_sketches(small_graph, num_instances=2, k=4, seed=1)
        with pytest.raises(ValueError):
            sk.estimate(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            sk.estimate(np.array([1000]))


class TestSkim:
    def test_valid_seed_set(self, small_graph):
        seeds = skim_seeds(small_graph, 4, num_instances=12, sketch_k=12, seed=1)
        assert len(seeds) == 4
        assert len(np.unique(seeds)) == 4

    def test_picks_obvious_hub(self):
        g = constant_weights(star_graph(15), 0.95)
        seeds = skim_seeds(g, 1, num_instances=8, sketch_k=8, seed=1)
        assert seeds.tolist() == [0]

    def test_quality_near_imm(self, small_graph):
        from repro.imm import imm

        skim = skim_seeds(small_graph, 4, num_instances=24, sketch_k=16, seed=1)
        exact = imm(small_graph, k=4, eps=0.5, seed=1).seeds
        s_skim = estimate_spread(small_graph, skim, "IC", trials=300, seed=9).mean
        s_imm = estimate_spread(small_graph, exact, "IC", trials=300, seed=9).mean
        assert s_skim >= 0.85 * s_imm

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            skim_seeds(small_graph, 0)
