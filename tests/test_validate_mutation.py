"""Tests for the mutation suite (repro.validate.mutation).

Every deliberately injected fault must be *killed* — a surviving mutant
means the oracle would wave through the corresponding real bug.
"""

from repro.validate import MutantResult, run_mutation_suite

EXPECTED_MUTANTS = {
    "unsorted-sample",
    "within-sample-duplicate",
    "indptr-corruption",
    "sample-of-corruption",
    "byte-model-drift",
    "inverted-index-drop",
    "skipped-decrement",
    "biased-rng",
}


class TestMutationSuite:
    def test_every_mutant_is_killed(self):
        results = run_mutation_suite(seed=1)
        survivors = [r.name for r in results if not r.detected]
        assert survivors == [], f"oracle blind spots: {survivors}"

    def test_all_fault_classes_covered(self):
        names = {r.name for r in run_mutation_suite(seed=1)}
        assert names == EXPECTED_MUTANTS

    def test_killed_at_other_seeds(self):
        # The detectors must not depend on a lucky draw.
        for seed in (2, 17):
            assert all(r.detected for r in run_mutation_suite(seed=seed))

    def test_result_rendering(self):
        killed = MutantResult("x", "fault", True, "flagged")
        survived = MutantResult("y", "fault", False, "stayed green")
        assert "KILLED" in str(killed)
        assert "SURVIVED" in str(survived)
