"""Tests for the mutation suite (repro.validate.mutation).

Every deliberately injected fault must be *killed* — a surviving mutant
means the oracle would wave through the corresponding real bug.
"""

import pytest

from repro.validate import SMOKE_MUTANTS, MutantResult, run_mutation_suite

# The two engine mutants spin real process pools; the conftest watchdog
# turns a wedged pool into a failure instead of a hung suite.
pytestmark = pytest.mark.parallel

EXPECTED_MUTANTS = {
    "unsorted-sample",
    "within-sample-duplicate",
    "indptr-corruption",
    "sample-of-corruption",
    "byte-model-drift",
    "inverted-index-drop",
    "skipped-decrement",
    "biased-rng",
    "recovery-skips-sample",
    "wrong-stream-replay",
    "double-count-after-shrink",
    "worker-reorders-cohort-landing",
    "worker-uses-wrong-stream-offset",
    "worker-writes-overlapping-arena-extent",
    "fused-counter-drops-block",
    "replay-lands-block-twice",
    "resume-skips-cursor",
    "speculative-result-raced-in-wrong-order",
    "stale-index-served-after-graph-change",
    "tighten-reuses-wrong-stream-offset",
    "degraded-result-reports-full-epsilon",
    "breaker-open-still-extends",
    "compressed-rank-permutation-not-inverted-on-decode",
    "compressed-counting-skips-continuation-byte",
    "cluster-unavailable-served-as-fresh",
    "failover-double-dispatches-extension",
}


class TestMutationSuite:
    def test_every_mutant_is_killed(self):
        results = run_mutation_suite(seed=1)
        survivors = [r.name for r in results if not r.detected]
        assert survivors == [], f"oracle blind spots: {survivors}"

    def test_all_fault_classes_covered(self):
        names = {r.name for r in run_mutation_suite(seed=1)}
        assert names == EXPECTED_MUTANTS

    def test_killed_at_other_seeds(self):
        # The detectors must not depend on a lucky draw.
        for seed in (2, 17):
            assert all(r.detected for r in run_mutation_suite(seed=seed))

    def test_names_filter(self):
        results = run_mutation_suite(seed=1, names=("biased-rng",))
        assert [r.name for r in results] == ["biased-rng"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown mutants"):
            run_mutation_suite(names=("not-a-mutant",))

    def test_smoke_subset_valid_and_killed(self):
        assert set(SMOKE_MUTANTS) <= EXPECTED_MUTANTS
        # all three recovery fault classes stay in the cheap CI set
        assert {
            "recovery-skips-sample",
            "wrong-stream-replay",
            "double-count-after-shrink",
        } <= set(SMOKE_MUTANTS)
        assert all(r.detected for r in run_mutation_suite(names=SMOKE_MUTANTS))

    def test_result_rendering(self):
        killed = MutantResult("x", "fault", True, "flagged")
        survived = MutantResult("y", "fault", False, "stayed green")
        assert "KILLED" in str(killed)
        assert "SURVIVED" in str(survived)
