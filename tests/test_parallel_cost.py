"""Tests for the shared-memory cost model (repro.parallel.cost)."""

import numpy as np
import pytest

from repro.imm.select import SelectionResult
from repro.parallel import PUMA
from repro.parallel.cost import CostModel
from repro.sampling.sampler import SampleBatch


def make_batch(edges_per_sample):
    arr = np.asarray(edges_per_sample, dtype=np.int64)
    return SampleBatch(
        first_index=0,
        count=len(arr),
        edges_examined=int(arr.sum()),
        per_sample_edges=arr,
    )


def make_selection(num_ranks=1, updates=1000):
    per_rank = np.full(num_ranks, updates // num_ranks, dtype=np.int64)
    return SelectionResult(
        seeds=np.arange(3),
        covered_samples=10,
        entries_scanned=updates,
        counter_updates=updates,
        per_rank_entries=per_rank,
        per_rank_searches=np.full(num_ranks, 100, dtype=np.int64),
        argmax_scans=3 * 100,
    )


class TestSampleSeconds:
    def test_serial_equals_work(self):
        model = CostModel(machine=PUMA, threads=1)
        batch = make_batch([100] * 10)
        expected = 1000 * PUMA.t_edge + PUMA.thread_overhead
        assert model.sample_seconds(batch) == pytest.approx(expected)

    def test_parallel_faster_than_serial(self):
        batch = make_batch([100] * 200)
        t1 = CostModel(machine=PUMA, threads=1).sample_seconds(batch)
        t8 = CostModel(machine=PUMA, threads=8).sample_seconds(batch)
        assert t8 < t1

    def test_single_huge_sample_limits_scaling(self):
        # One dominant sample: makespan bounded by it (Amdahl at the
        # sample granularity).
        batch = make_batch([10_000] + [1] * 50)
        t16 = CostModel(machine=PUMA, threads=16).sample_seconds(batch)
        assert t16 >= 10_000 * PUMA.t_edge * (1 - PUMA.serial_fraction)

    def test_empty_batch_costs_overhead_only(self):
        model = CostModel(machine=PUMA, threads=4)
        batch = make_batch([])
        assert model.sample_seconds(batch) == pytest.approx(4 * PUMA.thread_overhead)


class TestSelectSeconds:
    def test_decreases_with_threads(self):
        n, k = 5000, 10
        t1 = CostModel(machine=PUMA, threads=1).select_seconds(
            make_selection(1, 100_000), n, k
        )
        t8 = CostModel(machine=PUMA, threads=8).select_seconds(
            make_selection(8, 100_000), n, k
        )
        assert t8 < t1

    def test_rank_count_mismatch_fallback(self):
        # Meters computed for 1 rank priced at 8 threads: uses even split.
        model = CostModel(machine=PUMA, threads=8)
        out = model.select_seconds(make_selection(1, 80_000), 1000, 5)
        assert out > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(machine=PUMA, threads=0)
