"""Tests for the counter-based SplitMix64 stream (repro.rng.splitmix)."""

import numpy as np
import pytest

from repro.rng import SplitMix64, mix64
from repro.rng.splitmix import mix64_array


class TestMix64:
    def test_reference_values_are_stable(self):
        # Pinned values guard against accidental constant changes.
        assert mix64(0) == 0
        assert mix64(1) == mix64(1)
        assert mix64(1) != mix64(2)

    def test_avalanche(self):
        # Flipping one input bit flips roughly half the output bits.
        flips = bin(mix64(0x1234) ^ mix64(0x1235)).count("1")
        assert 16 <= flips <= 48

    def test_vectorized_matches_scalar(self):
        z = np.arange(1, 100, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        got = mix64_array(z)
        expected = [mix64(int(v)) for v in z]
        assert got.tolist() == expected


class TestSplitMix64:
    def test_deterministic(self):
        assert [SplitMix64(5).next_u64() for _ in range(4)] == [
            SplitMix64(5).next_u64() for _ in range(4)
        ]

    def test_block_matches_scalar(self):
        a, b = SplitMix64(9), SplitMix64(9)
        got = a.next_u64_block(64)
        expected = [b.next_u64() for _ in range(64)]
        assert got.tolist() == expected

    def test_block_then_scalar_continues(self):
        a, b = SplitMix64(9), SplitMix64(9)
        a.next_u64_block(10)
        for _ in range(10):
            b.next_u64()
        assert a.next_u64() == b.next_u64()

    def test_jump_is_o1_skip(self):
        a, b = SplitMix64(2), SplitMix64(2)
        a.jump(1000)
        for _ in range(1000):
            b.next_u64()
        assert a.next_u64() == b.next_u64()

    def test_jump_backwards_rejected(self):
        with pytest.raises(ValueError):
            SplitMix64(0).jump(-5)

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            SplitMix64(0).next_u64_block(-1)

    def test_random_unit_interval(self):
        values = SplitMix64(3).random_block(2000)
        assert values.min() >= 0.0
        assert values.max() < 1.0
        assert 0.45 < values.mean() < 0.55

    def test_randint_coverage(self):
        values = SplitMix64(4).randint_block(0, 5, 500)
        assert set(values.tolist()) == {0, 1, 2, 3, 4}

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SplitMix64(0).randint(1, 1)
        with pytest.raises(ValueError):
            SplitMix64(0).randint_block(1, 0, 3)

    def test_clone_preserves_position(self):
        gen = SplitMix64(7)
        gen.next_u64_block(13)
        twin = gen.clone()
        assert gen.next_u64() == twin.next_u64()

    def test_counter_property(self):
        gen = SplitMix64(7)
        assert gen.counter == 0
        gen.next_u64_block(5)
        assert gen.counter == 5


class TestSplit:
    def test_split_is_deterministic(self):
        assert SplitMix64(1).split(7).next_u64() == SplitMix64(1).split(7).next_u64()

    def test_split_children_differ(self):
        parent = SplitMix64(1)
        a = parent.split(0).next_u64_block(16)
        b = parent.split(1).next_u64_block(16)
        assert not np.array_equal(a, b)

    def test_split_independent_of_parent_position(self):
        p1 = SplitMix64(1)
        p2 = SplitMix64(1)
        p2.next_u64_block(100)  # advance the parent
        assert p1.split(3).next_u64() == p2.split(3).next_u64()

    def test_split_streams_look_uncorrelated(self):
        parent = SplitMix64(42)
        a = parent.split(10).random_block(4000)
        b = parent.split(11).random_block(4000)
        corr = float(np.corrcoef(a, b)[0, 1])
        assert abs(corr) < 0.05
