"""Checkpoint reload edge cases (repro.sampling.checkpoint.load_range).

The resume path's contract: ``load_range`` returns exactly the certified
bytes or raises ``CheckpointError`` — never a silently truncated array.
These tests drive the boundaries (empty range, full prefix, the last
sample before the cursor) and inject genuine short reads by truncating
the spill files behind an already-open sink.
"""

import numpy as np
import pytest

from repro.sampling import BlockCheckpointSink, CheckpointError, SortedRRRCollection, sample_batch
from repro.serving import FrozenIndexError, FrozenRRRIndex

SEED = 3


def _spilled_run(graph, run_dir, num_samples=40):
    """A run directory with ``num_samples`` certified samples in two blocks."""
    coll = SortedRRRCollection(graph.n)
    batch = sample_batch(graph, "IC", coll, num_samples, SEED)
    flat, indptr, _ = coll.flattened()
    sizes = np.diff(indptr)
    split = num_samples // 2
    with BlockCheckpointSink(run_dir, n=graph.n, model="IC", seed=SEED) as sink:
        sink.append_block(
            np.arange(split, dtype=np.int64),
            flat[: indptr[split]], sizes[:split],
            batch.per_sample_edges[:split],
        )
        sink.append_block(
            np.arange(split, num_samples, dtype=np.int64),
            flat[indptr[split]:], sizes[split:],
            batch.per_sample_edges[split:],
        )
    return coll, batch


class TestLoadRangeBounds:
    def test_empty_range_lo_equals_hi(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        sink = BlockCheckpointSink(
            tmp_path / "run", n=ba_graph.n, model="IC", seed=SEED, readonly=True
        )
        for lo in (0, 7, sink.landed):
            flat, sizes, edges = sink.load_range(lo, lo)
            assert len(flat) == len(sizes) == len(edges) == 0

    def test_full_prefix_roundtrip(self, ba_graph, tmp_path):
        coll, batch = _spilled_run(ba_graph, tmp_path / "run")
        sink = BlockCheckpointSink(
            tmp_path / "run", n=ba_graph.n, model="IC", seed=SEED, readonly=True
        )
        flat, sizes, edges = sink.load_range(0, sink.landed)
        ref_flat, ref_indptr, _ = coll.flattened()
        assert np.array_equal(flat, ref_flat)
        assert np.array_equal(sizes, np.diff(ref_indptr))
        assert np.array_equal(edges, batch.per_sample_edges)

    def test_last_sample_before_cursor(self, ba_graph, tmp_path):
        coll, _ = _spilled_run(ba_graph, tmp_path / "run")
        sink = BlockCheckpointSink(
            tmp_path / "run", n=ba_graph.n, model="IC", seed=SEED, readonly=True
        )
        flat, sizes, _ = sink.load_range(sink.landed - 1, sink.landed)
        assert len(sizes) == 1
        assert np.array_equal(flat, np.asarray(coll[sink.landed - 1]))

    def test_past_cursor_raises(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        sink = BlockCheckpointSink(
            tmp_path / "run", n=ba_graph.n, model="IC", seed=SEED, readonly=True
        )
        with pytest.raises(CheckpointError, match="outside the certified prefix"):
            sink.load_range(sink.landed, sink.landed + 1)
        with pytest.raises(CheckpointError, match="outside the certified prefix"):
            sink.load_range(-1, 1)
        with pytest.raises(CheckpointError, match="outside the certified prefix"):
            sink.load_range(5, 4)


class TestShortReads:
    """Files truncated *behind* an open sink: the short read must be loud.

    (Truncation before opening is caught by the constructor's byte
    floors; these tests reach the ``load_range`` checks themselves.)
    """

    def _readonly(self, graph, run_dir):
        return BlockCheckpointSink(
            run_dir, n=graph.n, model="IC", seed=SEED, readonly=True
        )

    def test_truncated_flat_raises(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        sink = self._readonly(ba_graph, tmp_path / "run")
        flat_path = tmp_path / "run" / "flat.i32.bin"
        flat_path.write_bytes(flat_path.read_bytes()[:-8])
        with pytest.raises(CheckpointError, match="flat.i32.bin short read"):
            sink.load_range(0, sink.landed)

    def test_truncated_sizes_raises(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        sink = self._readonly(ba_graph, tmp_path / "run")
        sizes_path = tmp_path / "run" / "sizes.i64.bin"
        sizes_path.write_bytes(sizes_path.read_bytes()[:-8])
        with pytest.raises(CheckpointError, match="sizes.i64.bin short read"):
            sink.load_range(0, sink.landed)

    def test_truncated_edges_raises(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        sink = self._readonly(ba_graph, tmp_path / "run")
        edges_path = tmp_path / "run" / "edges.i64.bin"
        edges_path.write_bytes(edges_path.read_bytes()[:-8])
        with pytest.raises(CheckpointError, match="edges.i64.bin short read"):
            sink.load_range(0, sink.landed)

    def test_untouched_prefix_still_loads(self, ba_graph, tmp_path):
        # Truncation past the requested range must not matter.
        coll, _ = _spilled_run(ba_graph, tmp_path / "run")
        sink = self._readonly(ba_graph, tmp_path / "run")
        flat_path = tmp_path / "run" / "flat.i32.bin"
        flat_path.write_bytes(flat_path.read_bytes()[:-8])
        flat, _, _ = sink.load_range(0, 1)
        assert np.array_equal(flat, np.asarray(coll[0]))


class TestTornTail:
    def test_torn_tail_beyond_cursor_is_ignored(self, ba_graph, tmp_path):
        coll, _ = _spilled_run(ba_graph, tmp_path / "run")
        for name in ("flat.i32.bin", "sizes.i64.bin", "edges.i64.bin"):
            with open(tmp_path / "run" / name, "ab") as fh:
                fh.write(b"\x7f" * 13)  # a torn, uncertified tail
        sink = BlockCheckpointSink(
            tmp_path / "run", n=ba_graph.n, model="IC", seed=SEED, readonly=True
        )
        flat, _, _ = sink.load_range(0, sink.landed)
        ref_flat, _, _ = coll.flattened()
        assert np.array_equal(flat, ref_flat)

    def test_frozen_index_promotion_from_torn_run(self, ba_graph, tmp_path):
        coll, _ = _spilled_run(ba_graph, tmp_path / "run")
        with open(tmp_path / "run" / "flat.i32.bin", "ab") as fh:
            fh.write(b"\x7f" * 7)
        index = FrozenRRRIndex.freeze(
            tmp_path / "run", tmp_path / "index",
            graph=ba_graph, model="IC", seed=SEED, k=5, eps=0.5,
        )
        try:
            assert index.num_samples == len(coll)
            flat, indptr, _ = index.arrays()
            ref_flat, ref_indptr, _ = coll.flattened()
            assert np.array_equal(np.asarray(flat), ref_flat)
            assert np.array_equal(indptr, ref_indptr)
        finally:
            index.close()
        # The frozen artifact's own seal verifies on a fresh open.
        with FrozenRRRIndex.open(tmp_path / "index", graph=ba_graph) as back:
            assert back.num_samples == len(coll)

    def test_torn_index_file_fails_seal(self, ba_graph, tmp_path):
        _spilled_run(ba_graph, tmp_path / "run")
        index = FrozenRRRIndex.freeze(
            tmp_path / "run", tmp_path / "index",
            graph=ba_graph, model="IC", seed=SEED, k=5, eps=0.5,
        )
        index.close()
        # Unlike the checkpoint (append-only, cursor-certified floors),
        # the frozen index demands *exact* sizes: a tail grown behind
        # the manifest is corruption, not an ignorable torn tail.
        with open(tmp_path / "index" / "flat.i32.bin", "ab") as fh:
            fh.write(b"\x7f" * 4)
        with pytest.raises(FrozenIndexError, match="torn or was edited"):
            FrozenRRRIndex.open(tmp_path / "index")


class TestCloseDiscipline:
    def test_close_removes_temporaries(self, ba_graph, tmp_path):
        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=SEED)
        # Simulate a crash that left atomic-write temporaries behind.
        (tmp_path / "run" / "MANIFEST.json.tmp").write_text("{}")
        (tmp_path / "run" / "cursor.json.tmp").write_text("{}")
        sink.close()
        assert not (tmp_path / "run" / "MANIFEST.json.tmp").exists()
        assert not (tmp_path / "run" / "cursor.json.tmp").exists()
        sink.close()  # idempotent
