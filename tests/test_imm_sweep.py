"""Tests for the k-sweep driver (repro.imm.sweep) and full TIM+."""

import numpy as np
import pytest

from repro.baselines import tim_plus
from repro.diffusion import estimate_spread
from repro.imm import imm, imm_sweep


class TestImmSweep:
    def test_sample_reuse_is_monotone(self, ba_graph):
        results = imm_sweep(ba_graph, [5, 10, 20], 0.5, seed=1)
        assert results[0].extra["samples_reused"] == 0
        assert results[1].extra["samples_reused"] == results[0].num_samples
        assert results[2].extra["samples_reused"] == results[1].num_samples

    def test_theta_monotone_in_k(self, ba_graph):
        results = imm_sweep(ba_graph, [5, 10, 20], 0.5, seed=1)
        thetas = [r.theta for r in results]
        assert thetas == sorted(thetas)

    def test_sweep_cheaper_than_independent_runs(self, ba_graph):
        ks = [5, 10, 20]
        sweep = imm_sweep(ba_graph, ks, 0.5, seed=1)
        sweep_samples = sweep[-1].num_samples  # total generated once
        independent = sum(
            imm(ba_graph, k=k, eps=0.5, seed=1).num_samples for k in ks
        )
        assert sweep_samples < independent

    def test_results_returned_in_caller_order(self, ba_graph):
        results = imm_sweep(ba_graph, [20, 5, 10], 0.5, seed=1)
        assert [r.k for r in results] == [20, 5, 10]

    def test_duplicate_ks_handled(self, ba_graph):
        results = imm_sweep(ba_graph, [5, 5], 0.5, seed=1)
        np.testing.assert_array_equal(results[0].seeds, results[1].seeds)

    def test_smallest_k_matches_isolated_run(self, ba_graph):
        """The first sweep point sees exactly what a fresh run sees."""
        sweep = imm_sweep(ba_graph, [5, 15], 0.5, seed=3)
        solo = imm(ba_graph, k=5, eps=0.5, seed=3)
        np.testing.assert_array_equal(sweep[0].seeds, solo.seeds)
        assert sweep[0].theta == solo.theta

    def test_quality_matches_isolated_runs(self, ba_graph):
        ks = [5, 15]
        sweep = imm_sweep(ba_graph, ks, 0.5, seed=3)
        for r, k in zip(sweep, ks):
            solo = imm(ba_graph, k=k, eps=0.5, seed=3)
            s_sweep = estimate_spread(ba_graph, r.seeds, "IC", trials=150, seed=7).mean
            s_solo = estimate_spread(ba_graph, solo.seeds, "IC", trials=150, seed=7).mean
            assert s_sweep >= 0.9 * s_solo

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            imm_sweep(ba_graph, [], 0.5)
        with pytest.raises(ValueError):
            imm_sweep(ba_graph, [0], 0.5)


class TestTimPlusFull:
    def test_valid_output(self, ba_graph):
        res = tim_plus(ba_graph, 5, 0.5, seed=1, theta_cap=5000)
        assert len(np.unique(res.seeds)) == 5
        assert res.num_samples <= 5000
        assert 0.0 <= res.coverage <= 1.0

    def test_quality_comparable_to_imm(self, ba_graph):
        """Same guarantee, same kernels — only θ differs."""
        t = tim_plus(ba_graph, 5, 0.5, seed=1, theta_cap=8000)
        i = imm(ba_graph, k=5, eps=0.5, seed=1)
        s_t = estimate_spread(ba_graph, t.seeds, "IC", trials=200, seed=9).mean
        s_i = estimate_spread(ba_graph, i.seeds, "IC", trials=200, seed=9).mean
        assert s_t >= 0.85 * s_i

    def test_more_samples_than_imm(self, ba_graph):
        t = tim_plus(ba_graph, 5, 0.5, seed=1)
        i = imm(ba_graph, k=5, eps=0.5, seed=1)
        assert t.theta > i.theta
