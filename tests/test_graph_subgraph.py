"""Tests for induced subgraphs (repro.graph.subgraph)."""

import numpy as np
import pytest

from repro.graph import from_edge_list
from repro.graph.subgraph import induced_subgraph


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([0, 1, 3]))
        assert sub.n == 3
        assert mapping.tolist() == [0, 1, 3]
        # kept: 0->1, 1->3; dropped: 0->2, 2->3, 3->4
        assert sub.m == 2
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)  # renumbered 1->3

    def test_probabilities_carried(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([2, 3]))
        probs = {(u, v): p for u, v, p in sub.edges()}
        assert probs[(0, 1)] == 0.0  # original 2->3 had prob 0

    def test_duplicates_collapsed(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([1, 1, 0]))
        assert sub.n == 2
        assert mapping.tolist() == [0, 1]

    def test_whole_graph_identity(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.arange(5))
        assert sub == tiny_graph
        assert mapping.tolist() == [0, 1, 2, 3, 4]

    def test_singleton(self, tiny_graph):
        sub, _ = induced_subgraph(tiny_graph, np.array([4]))
        assert sub.n == 1 and sub.m == 0

    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            induced_subgraph(tiny_graph, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            induced_subgraph(tiny_graph, np.array([9]))

    def test_random_consistency(self):
        rng = np.random.default_rng(2)
        edges = [(int(u), int(v), float(p)) for u, v, p in
                 zip(rng.integers(0, 30, 120), rng.integers(0, 30, 120), rng.random(120))
                 if u != v]
        g = from_edge_list(30, edges)
        keep = np.unique(rng.choice(30, 12, replace=False))
        sub, mapping = induced_subgraph(g, keep)
        orig = {(u, v): p for u, v, p in g.edges()}
        for u, v, p in sub.edges():
            assert orig[(int(mapping[u]), int(mapping[v]))] == p
        expected = sum(
            1 for (u, v) in orig if u in set(keep.tolist()) and v in set(keep.tolist())
        )
        assert sub.m == expected
