"""Tests for the two RRR storage layouts (repro.sampling.collection)."""

import numpy as np
import pytest

from repro.sampling import HypergraphRRRCollection, SortedRRRCollection
from repro.sampling.collection import (
    SAMPLE_ID_BYTES,
    VECTOR_HEADER_BYTES,
    VERTEX_ID_BYTES,
)

SETS = [np.array([0, 2, 5], np.int32), np.array([1], np.int32), np.array([2, 5], np.int32)]


class TestSortedCollection:
    def test_append_and_iterate(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        assert len(coll) == 3
        assert coll.total_entries == 6
        assert [s.tolist() for s in coll] == [[0, 2, 5], [1], [2, 5]]
        assert coll[1].tolist() == [1]

    def test_flattened_structure(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        flat, indptr, sample_of = coll.flattened()
        assert flat.tolist() == [0, 2, 5, 1, 2, 5]
        assert indptr.tolist() == [0, 3, 4, 6]
        assert sample_of.tolist() == [0, 0, 0, 1, 2, 2]

    def test_flattened_cache_invalidation(self):
        coll = SortedRRRCollection(6)
        coll.append(SETS[0])
        flat1, _, _ = coll.flattened()
        coll.append(SETS[1])
        flat2, _, _ = coll.flattened()
        assert len(flat2) == len(flat1) + 1

    def test_counters_equal_manual_bincount(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        assert coll.counters().tolist() == [1, 1, 2, 0, 0, 2]

    def test_unsorted_input_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([3, 1], np.int32))

    def test_duplicate_vertices_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([1, 1], np.int32))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="root"):
            SortedRRRCollection(6).append(np.empty(0, np.int32))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            SortedRRRCollection(3).append(np.array([5], np.int32))

    def test_memory_model_exact(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        expected = VECTOR_HEADER_BYTES + 3 * VECTOR_HEADER_BYTES + 6 * VERTEX_ID_BYTES
        assert coll.nbytes_model() == expected

    def test_empty_collection(self):
        coll = SortedRRRCollection(4)
        flat, indptr, sample_of = coll.flattened()
        assert len(flat) == 0
        assert indptr.tolist() == [0]
        assert coll.counters().tolist() == [0, 0, 0, 0]


class TestHypergraphCollection:
    def test_append_and_inverted_index(self):
        coll = HypergraphRRRCollection(6)
        coll.extend(SETS)
        assert coll.samples_containing(2) == [0, 2]
        assert coll.samples_containing(1) == [1]
        assert coll.samples_containing(3) == []

    def test_counters_match_sorted_layout(self):
        hyper = HypergraphRRRCollection(6)
        sorted_coll = SortedRRRCollection(6)
        hyper.extend(SETS)
        sorted_coll.extend(SETS)
        assert hyper.counters().tolist() == sorted_coll.counters().tolist()

    def test_memory_model_is_larger_than_sorted(self):
        hyper = HypergraphRRRCollection(6)
        sorted_coll = SortedRRRCollection(6)
        hyper.extend(SETS)
        sorted_coll.extend(SETS)
        assert hyper.nbytes_model() > sorted_coll.nbytes_model()

    def test_memory_model_exact(self):
        coll = HypergraphRRRCollection(6)
        coll.extend(SETS)
        expected = (
            2 * VECTOR_HEADER_BYTES
            + 3 * VECTOR_HEADER_BYTES
            + 6 * VERTEX_ID_BYTES
            + 6 * VECTOR_HEADER_BYTES
            + 6 * SAMPLE_ID_BYTES
        )
        assert coll.nbytes_model() == expected

    def test_validation(self):
        coll = HypergraphRRRCollection(3)
        with pytest.raises(ValueError):
            coll.append(np.empty(0, np.int32))
        with pytest.raises(ValueError):
            coll.append(np.array([4], np.int32))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            HypergraphRRRCollection(-1)
        with pytest.raises(ValueError):
            SortedRRRCollection(-1)
