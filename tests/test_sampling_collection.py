"""Tests for the two RRR storage layouts (repro.sampling.collection)."""

import numpy as np
import pytest

from repro.sampling import HypergraphRRRCollection, SortedRRRCollection
from repro.sampling.collection import (
    SAMPLE_ID_BYTES,
    VECTOR_HEADER_BYTES,
    VERTEX_ID_BYTES,
)

SETS = [np.array([0, 2, 5], np.int32), np.array([1], np.int32), np.array([2, 5], np.int32)]


class TestSortedCollection:
    def test_append_and_iterate(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        assert len(coll) == 3
        assert coll.total_entries == 6
        assert [s.tolist() for s in coll] == [[0, 2, 5], [1], [2, 5]]
        assert coll[1].tolist() == [1]

    def test_flattened_structure(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        flat, indptr, sample_of = coll.flattened()
        assert flat.tolist() == [0, 2, 5, 1, 2, 5]
        assert indptr.tolist() == [0, 3, 4, 6]
        assert sample_of.tolist() == [0, 0, 0, 1, 2, 2]

    def test_flattened_cache_invalidation(self):
        coll = SortedRRRCollection(6)
        coll.append(SETS[0])
        flat1, _, _ = coll.flattened()
        coll.append(SETS[1])
        flat2, _, _ = coll.flattened()
        assert len(flat2) == len(flat1) + 1

    def test_counters_equal_manual_bincount(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        assert coll.counters().tolist() == [1, 1, 2, 0, 0, 2]

    def test_unsorted_input_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([3, 1], np.int32))

    def test_duplicate_vertices_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([1, 1], np.int32))

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="root"):
            SortedRRRCollection(6).append(np.empty(0, np.int32))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            SortedRRRCollection(3).append(np.array([5], np.int32))

    def test_memory_model_exact(self):
        coll = SortedRRRCollection(6)
        coll.extend(SETS)
        expected = VECTOR_HEADER_BYTES + 3 * VECTOR_HEADER_BYTES + 6 * VERTEX_ID_BYTES
        assert coll.nbytes_model() == expected

    def test_empty_collection(self):
        coll = SortedRRRCollection(4)
        flat, indptr, sample_of = coll.flattened()
        assert len(flat) == 0
        assert indptr.tolist() == [0]
        assert coll.counters().tolist() == [0, 0, 0, 0]


class TestAppendBatchBoundaries:
    """Boundary semantics of the bulk append's sortedness mask (the mask
    flags non-*increasing* within-sample pairs; cross-sample pairs are
    exempt)."""

    def test_duplicate_straddling_two_samples_accepted(self):
        # Sample 0 ends with vertex 5, sample 1 starts with vertex 5:
        # the repeated vertex is legal because it belongs to different
        # samples (diff == 0 exactly on the boundary).
        coll = SortedRRRCollection(7)
        coll.append_batch(np.array([1, 5, 5, 6], np.int64), np.array([2, 2]))
        assert len(coll) == 2
        assert coll[0].tolist() == [1, 5]
        assert coll[1].tolist() == [5, 6]

    def test_straddling_boundary_singleton_tail(self):
        coll = SortedRRRCollection(6)
        coll.append_batch(np.array([1, 5, 5], np.int64), np.array([2, 1]))
        assert len(coll) == 2
        assert coll[0].tolist() == [1, 5]
        assert coll[1].tolist() == [5]

    def test_descending_across_boundary_accepted(self):
        # flat strictly decreases across the boundary — still fine.
        coll = SortedRRRCollection(6)
        coll.append_batch(np.array([4, 5, 0, 1], np.int64), np.array([2, 2]))
        assert coll[1].tolist() == [0, 1]

    def test_within_sample_duplicate_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append_batch(np.array([1, 1, 2], np.int64), np.array([3]))

    def test_within_sample_inversion_rejected(self):
        coll = SortedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append_batch(np.array([0, 3, 2], np.int64), np.array([1, 2]))

    def test_all_singleton_samples_skip_pair_check(self):
        coll = SortedRRRCollection(6)
        coll.append_batch(np.array([5, 5, 0], np.int64), np.array([1, 1, 1]))
        assert len(coll) == 3
        assert coll.total_entries == 3


class TestEmptyCollection:
    def test_flattened_on_empty(self):
        flat, indptr, sample_of = SortedRRRCollection(6).flattened()
        assert flat.tolist() == []
        assert indptr.tolist() == [0]
        assert sample_of.tolist() == []

    def test_getitem_on_empty_raises_indexerror(self):
        # Must be IndexError, not ZeroDivisionError from the modulo.
        with pytest.raises(IndexError):
            SortedRRRCollection(6)[0]
        with pytest.raises(IndexError):
            SortedRRRCollection(6)[-1]

    def test_iteration_and_counters_on_empty(self):
        coll = SortedRRRCollection(4)
        assert list(coll) == []
        assert coll.counters().tolist() == [0, 0, 0, 0]
        assert len(coll) == 0

    def test_empty_batch_append_is_noop(self):
        coll = SortedRRRCollection(4)
        coll.append_batch(np.empty(0, np.int64), np.empty(0, np.int64))
        assert len(coll) == 0
        flat, indptr, _ = coll.flattened()
        assert flat.tolist() == [] and indptr.tolist() == [0]


class TestHypergraphCollection:
    def test_append_and_inverted_index(self):
        coll = HypergraphRRRCollection(6)
        coll.extend(SETS)
        assert coll.samples_containing(2) == [0, 2]
        assert coll.samples_containing(1) == [1]
        assert coll.samples_containing(3) == []

    def test_counters_match_sorted_layout(self):
        hyper = HypergraphRRRCollection(6)
        sorted_coll = SortedRRRCollection(6)
        hyper.extend(SETS)
        sorted_coll.extend(SETS)
        assert hyper.counters().tolist() == sorted_coll.counters().tolist()

    def test_memory_model_is_larger_than_sorted(self):
        hyper = HypergraphRRRCollection(6)
        sorted_coll = SortedRRRCollection(6)
        hyper.extend(SETS)
        sorted_coll.extend(SETS)
        assert hyper.nbytes_model() > sorted_coll.nbytes_model()

    def test_memory_model_exact(self):
        coll = HypergraphRRRCollection(6)
        coll.extend(SETS)
        expected = (
            2 * VECTOR_HEADER_BYTES
            + 3 * VECTOR_HEADER_BYTES
            + 6 * VERTEX_ID_BYTES
            + 6 * VECTOR_HEADER_BYTES
            + 6 * SAMPLE_ID_BYTES
        )
        assert coll.nbytes_model() == expected

    def test_validation(self):
        coll = HypergraphRRRCollection(3)
        with pytest.raises(ValueError):
            coll.append(np.empty(0, np.int32))
        with pytest.raises(ValueError):
            coll.append(np.array([4], np.int32))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            HypergraphRRRCollection(-1)
        with pytest.raises(ValueError):
            SortedRRRCollection(-1)
