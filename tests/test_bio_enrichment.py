"""Tests for pathway enrichment statistics (repro.bio.enrichment)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.bio import (
    benjamini_hochberg,
    enrich,
    fisher_exact_greater,
    make_expression_dataset,
    make_pathway_db,
)


class TestFisherExact:
    def test_matches_scipy_fisher(self):
        # 2x2 table: overlap, selected-not-in-pathway, pathway-not-
        # selected, neither.
        overlap, selected, pathway, universe = 8, 50, 30, 1000
        table = [
            [overlap, selected - overlap],
            [pathway - overlap, universe - selected - pathway + overlap],
        ]
        _, expected = scipy_stats.fisher_exact(table, alternative="greater")
        got = fisher_exact_greater(overlap, selected, pathway, universe)
        assert got == pytest.approx(expected, rel=1e-9)

    def test_zero_overlap_is_certain(self):
        assert fisher_exact_greater(0, 10, 10, 100) == pytest.approx(1.0)

    def test_full_overlap_is_tiny(self):
        p = fisher_exact_greater(10, 10, 10, 1000)
        assert p < 1e-15

    def test_validation(self):
        with pytest.raises(ValueError):
            fisher_exact_greater(5, 4, 10, 100)  # overlap > selected
        with pytest.raises(ValueError):
            fisher_exact_greater(-1, 4, 10, 100)
        with pytest.raises(ValueError):
            fisher_exact_greater(1, 4, 10, 0)


class TestBenjaminiHochberg:
    def test_known_example(self):
        p = np.array([0.01, 0.04, 0.03, 0.005])
        adj = benjamini_hochberg(p)
        # sorted: 0.005, 0.01, 0.03, 0.04 -> raw BH: 0.02, 0.02, 0.04, 0.04
        assert adj[np.argsort(p)].tolist() == pytest.approx([0.02, 0.02, 0.04, 0.04])

    def test_monotone_in_input_order(self):
        p = np.array([0.5, 0.001, 0.2])
        adj = benjamini_hochberg(p)
        assert adj[1] <= adj[2] <= adj[0]

    def test_clipped_at_one(self):
        adj = benjamini_hochberg(np.array([0.9, 0.95]))
        assert adj.max() <= 1.0

    def test_empty(self):
        assert len(benjamini_hochberg(np.empty(0))) == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            benjamini_hochberg(np.zeros((2, 2)))


class TestEnrich:
    @pytest.fixture(scope="class")
    def db(self):
        ds = make_expression_dataset(
            "tumor",
            num_response_modules=2,
            num_housekeeping_modules=1,
            module_size=8,
            response_shadows=1,
            housekeeping_shadows=1,
            num_bridge=2,
            num_noise=30,
            num_samples=30,
            seed=5,
        )
        return ds, make_pathway_db(ds, num_decoys=5, seed=5)

    def test_planted_selection_enriches_its_pathway(self, db):
        ds, pdb = db
        selected = ds.module_members(0)  # the whole module
        result = enrich(selected, pdb)
        top_name, top_label, overlap, p, adj = result.table[0]
        assert top_label == "response"
        assert top_name.startswith("RESPONSE_00")
        assert adj < 0.05
        assert result.num_enriched >= 1

    def test_random_selection_enriches_nothing(self, db):
        ds, pdb = db
        rng = np.random.default_rng(1)
        selected = rng.choice(ds.num_features, size=8, replace=False)
        result = enrich(selected, pdb)
        # random 8-of-~80 rarely survives BH at 0.05
        assert result.num_enriched <= 1

    def test_top_labels(self, db):
        ds, pdb = db
        result = enrich(ds.module_members(0), pdb)
        assert result.top_labels(3)[0] == "response"

    def test_validation(self, db):
        ds, pdb = db
        with pytest.raises(ValueError):
            enrich(np.array([ds.num_features + 5]), pdb)
        with pytest.raises(ValueError):
            enrich(np.array([0]), pdb, alpha=1.0)


class TestMakePathwayDB:
    def test_structure(self):
        ds = make_expression_dataset(
            "tumor",
            num_response_modules=2,
            num_housekeeping_modules=2,
            module_size=6,
            response_shadows=1,
            housekeeping_shadows=1,
            num_bridge=2,
            num_noise=5,
            num_samples=20,
            seed=3,
        )
        db = make_pathway_db(
            ds,
            response_multiplicity=2,
            housekeeping_multiplicity=3,
            num_decoys=4,
            seed=3,
        )
        labels = list(db.labels.values())
        assert labels.count("response") == 2 * 2
        assert labels.count("housekeeping") == 2 * 3
        assert labels.count("decoy") == 4
        assert db.universe_size == ds.num_features
        for name in db.names():
            members = db.members(name)
            assert len(members) > 0
            assert members.max() < ds.num_features

    def test_validation(self):
        ds = make_expression_dataset(
            "tumor",
            num_response_modules=1,
            num_housekeeping_modules=1,
            module_size=4,
            response_shadows=1,
            housekeeping_shadows=1,
            num_bridge=1,
            num_noise=3,
            num_samples=20,
            seed=1,
        )
        with pytest.raises(ValueError):
            make_pathway_db(ds, member_fraction=0.0)
        with pytest.raises(ValueError):
            make_pathway_db(ds, response_multiplicity=0)
