"""Tests for the CSR graph substrate (repro.graph.csr)."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list


class TestConstruction:
    def test_counts(self, tiny_graph):
        assert tiny_graph.n == 5
        assert tiny_graph.m == 5

    def test_invalid_indptr_length(self):
        with pytest.raises(ValueError):
            CSRGraph(
                2,
                np.zeros(2, np.int64),  # should be length 3
                np.empty(0, np.int32),
                np.empty(0),
                np.zeros(3, np.int64),
                np.empty(0, np.int32),
                np.empty(0),
            )

    def test_mismatched_edge_counts(self):
        with pytest.raises(ValueError):
            CSRGraph(
                2,
                np.array([0, 1, 1], np.int64),
                np.array([1], np.int32),
                np.array([0.5]),
                np.array([0, 0, 0], np.int64),  # in-direction says 0 edges
                np.empty(0, np.int32),
                np.empty(0),
            )

    def test_negative_vertex_count(self):
        with pytest.raises(ValueError):
            CSRGraph(
                -1,
                np.zeros(0, np.int64),
                np.empty(0, np.int32),
                np.empty(0),
                np.zeros(0, np.int64),
                np.empty(0, np.int32),
                np.empty(0),
            )


class TestQueries:
    def test_out_neighbors_sorted(self, tiny_graph):
        assert tiny_graph.out_neighbors(0).tolist() == [1, 2]
        assert tiny_graph.out_neighbors(4).tolist() == []

    def test_in_neighbors(self, tiny_graph):
        assert tiny_graph.in_neighbors(3).tolist() == [1, 2]
        assert tiny_graph.in_neighbors(0).tolist() == []

    def test_degrees_scalar_and_vector(self, tiny_graph):
        assert tiny_graph.out_degree(0) == 2
        assert tiny_graph.in_degree(3) == 2
        assert tiny_graph.out_degree().tolist() == [2, 1, 1, 1, 0]
        assert tiny_graph.in_degree().tolist() == [0, 1, 1, 2, 1]
        assert tiny_graph.out_degree().sum() == tiny_graph.m

    def test_edge_probs_follow_edges(self, tiny_graph):
        probs = dict(
            ((u, v), p) for u, v, p in tiny_graph.edges()
        )
        assert probs[(0, 1)] == 1.0
        assert probs[(2, 3)] == 0.0
        # in-direction must agree edge by edge
        for v in range(tiny_graph.n):
            for u, p in zip(
                tiny_graph.in_neighbors(v).tolist(),
                tiny_graph.in_edge_probs(v).tolist(),
            ):
                assert probs[(u, v)] == p

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(4, 0)

    def test_edges_iteration_complete(self, tiny_graph):
        assert sorted((u, v) for u, v, _ in tiny_graph.edges()) == [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
        ]


class TestDerived:
    def test_transpose_flips_edges(self, tiny_graph):
        t = tiny_graph.transpose()
        assert t.has_edge(1, 0)
        assert not t.has_edge(0, 1)
        assert t.n == tiny_graph.n and t.m == tiny_graph.m

    def test_double_transpose_is_identity(self, tiny_graph):
        assert tiny_graph.transpose().transpose() == tiny_graph

    def test_with_probs_replaces(self, tiny_graph):
        new_out = np.full(tiny_graph.m, 0.5)
        new_in = np.full(tiny_graph.m, 0.5)
        g2 = tiny_graph.with_probs(new_out, new_in)
        assert g2.out_probs.tolist() == [0.5] * 5
        # topology untouched
        assert g2.out_neighbors(0).tolist() == [1, 2]

    def test_with_probs_length_check(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.with_probs(np.zeros(3), np.zeros(3))

    def test_nbytes_positive_and_additive(self, tiny_graph):
        assert tiny_graph.nbytes() > 0

    def test_equality_semantics(self, tiny_graph):
        same = from_edge_list(
            5, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 0.0), (3, 4, 1.0)]
        )
        assert tiny_graph == same
        other = from_edge_list(5, [(0, 1, 1.0)])
        assert tiny_graph != other
        assert tiny_graph != "not a graph"  # NotImplemented path
