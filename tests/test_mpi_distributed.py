"""Tests for the distributed IMM (repro.mpi.distributed)."""

import numpy as np
import pytest

from repro.imm import imm
from repro.mpi import SimulatedOOMError, imm_dist
from repro.mpi.costmodel import allreduce_seconds, collective_seconds
from repro.parallel import EDISON, PUMA


class TestCostModel:
    def test_log_tree_formula(self):
        expected = 3 * (PUMA.alpha + PUMA.beta * 1000)
        assert collective_seconds(PUMA, 8, 1000) == pytest.approx(expected)

    def test_single_rank_free(self):
        assert collective_seconds(PUMA, 1, 10**9) == 0.0

    def test_allreduce_alias(self):
        assert allreduce_seconds(EDISON, 16, 64) == collective_seconds(EDISON, 16, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            collective_seconds(PUMA, 0, 10)
        with pytest.raises(ValueError):
            collective_seconds(PUMA, 2, -1)


class TestIMMDist:
    def test_seeds_identical_to_serial_any_rank_count(self, ba_graph):
        """Section 3.2 + per-sample streams: output independent of p."""
        serial = imm(ba_graph, k=8, eps=0.5, seed=3)
        for p in (1, 2, 5, 8):
            dist = imm_dist(ba_graph, k=8, eps=0.5, num_nodes=p, seed=3)
            np.testing.assert_array_equal(dist.seeds, serial.seeds)
            assert dist.theta == serial.theta
            assert dist.coverage == pytest.approx(serial.coverage, abs=1e-12)

    def test_sample_partition_covers_theta(self, ba_graph):
        dist = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=4, seed=3)
        per_rank = dist.extra["per_rank_samples"]
        assert sum(per_rank) == dist.num_samples
        assert max(per_rank) - min(per_rank) <= len(per_rank)

    def test_modeled_time_decreases_with_nodes(self, ba_graph):
        # Strictly decreasing while compute dominates; at higher node
        # counts this small input saturates (the paper's own small-input
        # behaviour), so only the low-p regime is asserted strictly.
        times = [
            imm_dist(ba_graph, k=8, eps=0.5, num_nodes=p, seed=3).total_time
            for p in (1, 2, 4, 8)
        ]
        assert times[0] > times[1] > times[2]
        assert times[3] < times[0]

    def test_communication_grows_with_nodes(self, ba_graph):
        small = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, seed=3)
        large = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=8, seed=3)
        assert small.extra["comm_calls"] == large.extra["comm_calls"]

    def test_allreduce_count_formula(self, ba_graph):
        """Each selection = (k+1) vector allreduces + 1 scalar; there is
        one selection per estimation round plus the final one."""
        k = 6
        dist = imm_dist(ba_graph, k=k, eps=0.5, num_nodes=3, seed=3)
        rounds = imm(ba_graph, k=k, eps=0.5, seed=3).extra["estimation_rounds"]
        assert dist.extra["comm_calls"] == (rounds + 1) * (k + 2)

    def test_coverage_history_matches_serial(self, ba_graph):
        """Parity satellite: the distributed driver now reports the same
        per-round ``(theta_x, frac)`` diagnostics as the serial one, so
        Figure-2-style sweeps can run distributed."""
        serial = imm(ba_graph, k=8, eps=0.5, seed=3)
        for p in (1, 3):
            dist = imm_dist(ba_graph, k=8, eps=0.5, num_nodes=p, seed=3)
            assert dist.extra["coverage_history"] == serial.extra["coverage_history"]
            assert dist.extra["estimation_rounds"] == serial.extra["estimation_rounds"]
            assert len(dist.extra["coverage_history"]) == dist.extra["estimation_rounds"]

    def test_eps_beyond_guarantee_rejected(self, ba_graph):
        """imm_dist replicates Algorithm 2 without calling estimate_theta,
        so it must apply the same eps validation itself."""
        with pytest.raises(ValueError, match="1 - 1/e"):
            imm_dist(ba_graph, k=5, eps=0.7, num_nodes=2)

    def test_leapfrog_scheme_valid(self, ba_graph):
        dist = imm_dist(
            ba_graph, k=8, eps=0.5, num_nodes=4, seed=3, rng_scheme="leapfrog"
        )
        assert len(np.unique(dist.seeds)) == 8
        assert 0.0 <= dist.coverage <= 1.0

    def test_leapfrog_differs_from_per_sample(self, ba_graph):
        a = imm_dist(ba_graph, k=8, eps=0.5, num_nodes=4, seed=3)
        b = imm_dist(
            ba_graph, k=8, eps=0.5, num_nodes=4, seed=3, rng_scheme="leapfrog"
        )
        # Different randomness — θ or seeds will generally differ.
        assert a.theta != b.theta or not np.array_equal(a.seeds, b.seeds)

    def test_oom_model_triggers(self, ba_graph):
        with pytest.raises(SimulatedOOMError) as info:
            imm_dist(
                ba_graph, k=5, eps=0.5, num_nodes=2, seed=3, mem_per_node=1024
            )
        assert info.value.limit == 1024
        assert info.value.needed > 1024

    def test_oom_avoided_with_more_nodes(self, ba_graph):
        """The Figure 7 effect: a limit that kills p=1 passes at p=8."""
        probe = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=8, seed=3)
        from repro.perf.memory import graph_bytes

        limit = graph_bytes(ba_graph) + probe.memory_bytes * 3 + 2 * 8 * ba_graph.n
        imm_dist(ba_graph, k=5, eps=0.5, num_nodes=8, seed=3, mem_per_node=limit)
        with pytest.raises(SimulatedOOMError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=1, seed=3, mem_per_node=limit)

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=0)
        with pytest.raises(ValueError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, rng_scheme="magic")
        with pytest.raises(ValueError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, threads_per_node=999)

    def test_ranks_reported_as_total_threads(self, ba_graph):
        dist = imm_dist(
            ba_graph, k=5, eps=0.5, num_nodes=4, machine=EDISON, seed=1
        )
        assert dist.ranks == 4 * EDISON.threads_per_node
        assert dist.extra["machine"] == "Edison"
