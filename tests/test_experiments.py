"""Tests for the experiment harness (repro.experiments)."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import load
from repro.experiments import ALL, CI, PAPER, ExperimentResult
from repro.experiments import fig1, fig2, fig7, table2, table3
from repro.experiments.common import render_table
from repro.experiments.distscaling import meter_run, price_run
from repro.mpi import imm_dist
from repro.parallel import PUMA

#: A deliberately tiny scale so each experiment finishes in seconds.
MINI = dataclasses.replace(
    CI,
    name="mini",
    k_serial=5,
    fig1_k_grid=(3, 6),
    fig1_trials=30,
    fig2_eps_grid=(0.4, 0.5),
    fig2_k_grid=(5, 10),
    fig34_eps_grid=(0.4, 0.5),
    fig34_k_grid=(5, 10),
    fig34_k_fixed=5,
    mt_threads=(2, 8, 20),
    k_mt=5,
    puma_nodes=(1, 4, 16),
    edison_nodes=(64, 256),
    k_dist=5,
    eps_dist=0.5,
    sweep_datasets=("cit-HepTh",),
    big_datasets=("com-YouTube",),
    theta_cap=3000,
    bio_k=12,
)


class TestScales:
    def test_ci_and_paper_follow_the_paper_parameters(self):
        assert PAPER.k_serial == 50 and PAPER.eps_serial == 0.5  # Table 2
        assert PAPER.eps_dist == 0.13 and PAPER.k_dist == 200  # Figures 7-8
        assert PAPER.mt_threads == tuple(range(2, 21))  # Figures 5-6
        assert max(PAPER.edison_nodes) == 1024
        assert CI.theta_cap is not None  # CI must stay bounded


class TestRenderTable:
    def test_alignment_and_oom_marker(self):
        text = render_table(["a", "b"], [[1, None], [22, 3.5]])
        assert "◦" in text
        lines = text.splitlines()
        assert len(lines) == 4

    def test_result_render(self):
        res = ExperimentResult("X", "mini", ["col"], [[1]], notes="note")
        out = res.render()
        assert "X" in out and "note" in out


class TestExperimentsRun:
    def test_registry_contains_every_table_and_figure(self):
        assert set(ALL) == {
            "table2",
            "table3",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "bio",
        }

    def test_fig2_theta_monotone(self):
        res = fig2.run(scale=MINI)
        by_point = {(row[0], row[1]): row[2] for row in res.rows}
        assert by_point[(0.4, 10)] >= by_point[(0.5, 10)]
        assert by_point[(0.5, 10)] >= by_point[(0.5, 5)]

    def test_fig1_more_seeds_more_activation(self):
        res = fig1.run(scale=MINI)
        loose = [(row[0], row[2]) for row in res.rows if row[1] == MINI.fig1_eps_pair[0]]
        assert loose[-1][1] >= loose[0][1]

    def test_table2_columns_and_savings(self):
        res = table2.run(scale=MINI)
        assert len(res.rows) == 8
        for row in res.rows:
            savings = row[-1]
            assert savings > 0  # sorted layout always smaller
            speedup = row[-4]
            assert speedup > 1  # modeled hypergraph always slower

    def test_table3_ladder_shape(self):
        res = table3.run(scale=MINI)
        # per graph: 4 variants with nondecreasing speedups down the ladder
        for graph in ("com-Orkut", "soc-LiveJournal1"):
            speedups = [row[5] for row in res.rows if row[0] == graph]
            assert len(speedups) == 4
            assert speedups[0] == 1.0
            assert speedups[1] > 1.0  # IMMopt beats IMM
            assert speedups[3] == max(speedups)  # dist wins overall

    def test_fig7_contains_oom_gaps(self):
        scale = dataclasses.replace(
            MINI, big_datasets=("com-Orkut",), puma_nodes=(1, 4, 16)
        )
        res = fig7.run(scale=scale)
        ic_rows = [r for r in res.rows if r[1] == "IC"]
        assert any(r[3] is None for r in ic_rows)  # OOM at small p
        assert any(r[3] is not None for r in ic_rows)  # survives at large p
        lt_rows = [r for r in res.rows if r[1] == "LT"]
        assert all(r[3] is not None for r in lt_rows)  # LT never OOMs


class TestDistScalingReplay:
    def test_price_run_matches_live_spmd(self):
        """The metered replay must price a configuration like the live
        SPMD run (same cost model, same meters)."""
        graph = load("com-YouTube", "IC")
        k, eps, seed, p = 5, 0.5, 0, 4
        live = imm_dist(
            graph, k=k, eps=eps, num_nodes=p, machine=PUMA, seed=seed, theta_cap=3000
        )
        metered = meter_run(graph, k, eps, "IC", seed, 3000)
        priced = price_run(metered, PUMA, p)
        # Same sampling work; selection conventions differ slightly
        # (replay charges the purge analytically), so compare loosely.
        assert priced["total"] == pytest.approx(live.total_time, rel=0.5)
        assert metered.theta == live.theta

    def test_price_run_memory_decreases_with_p(self):
        graph = load("com-YouTube", "IC")
        metered = meter_run(graph, 5, 0.5, "IC", 0, 3000)
        bytes_by_p = [price_run(metered, PUMA, p)["rank_bytes"] for p in (1, 2, 8)]
        assert bytes_by_p[0] > bytes_by_p[1] > bytes_by_p[2]

    def test_price_run_validation(self):
        graph = load("com-YouTube", "IC")
        metered = meter_run(graph, 5, 0.5, "IC", 0, 1000)
        with pytest.raises(ValueError):
            price_run(metered, PUMA, 0)
