"""Tests for the experiments command line and CSV export."""

import csv

import pytest

from repro.experiments import ALL, ExperimentResult
from repro.experiments.__main__ import main


class _StubModule:
    """Stands in for an experiment module in ALL."""

    def __init__(self):
        self.calls = []

    def run(self, scale, seed):
        self.calls.append((scale.name, seed))
        return ExperimentResult(
            experiment="stub",
            scale=scale.name,
            columns=["a", "b"],
            rows=[[1, None], [2, 3.5]],
            notes="stub notes",
        )


@pytest.fixture()
def stub(monkeypatch):
    module = _StubModule()
    monkeypatch.setitem(ALL, "stub", module)
    return module


class TestExperimentsMain:
    def test_runs_named_experiment(self, stub, capsys):
        assert main(["stub"]) == 0
        out = capsys.readouterr().out
        assert "stub notes" in out
        assert "[stub completed" in out
        assert stub.calls == [("ci", 0)]

    def test_paper_scale_flag(self, stub):
        main(["--scale", "paper", "stub"])
        assert stub.calls[-1][0] == "paper"

    def test_seed_flag(self, stub):
        main(["--seed", "7", "stub"])
        assert stub.calls[-1] == ("ci", 7)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-experiment"])

    def test_csv_export(self, stub, tmp_path, capsys):
        main(["--csv-dir", str(tmp_path), "stub"])
        csv_path = tmp_path / "stub_ci.csv"
        assert csv_path.exists()
        with open(csv_path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", ""]  # None -> empty cell
        assert rows[2] == ["2", "3.5"]


class TestToCsv:
    def test_round_trip_values(self, tmp_path):
        res = ExperimentResult(
            "x", "ci", ["col1", "col2"], [["name", 0.25]], notes=""
        )
        path = tmp_path / "out.csv"
        res.to_csv(path)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows == [["col1", "col2"], ["name", "0.25"]]
