"""Tests for the end-to-end Section 5 case study (repro.bio.casestudy)."""

import numpy as np
import pytest

from repro.bio import make_expression_dataset, run_case_study


@pytest.fixture(scope="module")
def mini_result():
    ds = make_expression_dataset(
        "tumor",
        num_response_modules=2,
        num_housekeeping_modules=2,
        module_size=8,
        response_shadows=3,
        housekeeping_shadows=4,
        response_shadow_noise=1.2,
        housekeeping_shadow_noise=1.7,
        num_bridge=10,
        num_noise=40,
        num_samples=40,
        seed=6,
    )
    return run_case_study("tumor", k=16, seed=6, dataset=ds, theta_cap=20_000)


class TestRunCaseStudy:
    def test_result_structure(self, mini_result):
        res = mini_result
        assert len(res.imm_seeds) == 16
        assert len(res.degree_top) == 16
        assert len(res.betweenness_top) == 16
        counts = res.counts()
        assert set(counts) == {"IMM", "degree", "betweenness"}
        assert all(c >= 0 for c in counts.values())

    def test_top_response_fraction_range(self, mini_result):
        fracs = mini_result.top_response_fraction(5)
        assert all(0.0 <= f <= 1.0 for f in fracs.values())

    def test_overlap_with_degree_range(self, mini_result):
        assert 0.0 <= mini_result.overlap_with_degree() <= 1.0

    def test_imm_seeds_favor_response_modules(self, mini_result):
        """The influence signal: IMM's seeds should hit response cores
        more than a uniform selection would."""
        mo = mini_result.dataset.module_of
        in_response = (mo[mini_result.imm_seeds] >= 0) & (
            mo[mini_result.imm_seeds] < 2
        )
        response_core_fraction = 16 / mini_result.dataset.num_features
        assert in_response.mean() > 2 * response_core_fraction

    def test_k_validation(self):
        with pytest.raises(ValueError):
            run_case_study("tumor", k=10**6, seed=1)

    def test_soil_recipe_runs(self):
        res = run_case_study("soil", k=12, seed=2, theta_cap=10_000)
        assert res.dataset.name == "soil"
        assert len(res.imm_seeds) == 12
