"""Tests for the dataset registry (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets import REGISTRY, load, names, paper_table2_row, spec
from repro.graph import graph_stats


class TestRegistry:
    def test_all_eight_table2_graphs_present(self):
        assert names() == [
            "cit-HepTh",
            "soc-Epinions1",
            "com-Amazon",
            "com-DBLP",
            "com-YouTube",
            "soc-Pokec",
            "soc-LiveJournal1",
            "com-Orkut",
        ]

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="available"):
            spec("com-Facebook")

    def test_paper_metadata_matches_table2(self):
        s = spec("cit-HepTh")
        assert s.paper_nodes == 27_770
        assert s.paper_edges == 352_807
        assert paper_table2_row("com-Orkut") == (3_072_441, 117_185_083, 76.28, 33_313)

    def test_paper_reference_runtimes_recorded(self):
        s = spec("com-Orkut")
        assert s.paper_imm_seconds == 28024.56
        assert s.paper_immopt_seconds == 9027.50
        # the ◦ cells of Table 2
        assert s.paper_imm_mb is None and s.paper_immopt_mb is None

    def test_scale_factor(self):
        s = spec("cit-HepTh")
        assert s.scale_factor == s.paper_nodes / s.build().n


class TestStandins:
    def test_deterministic(self):
        assert load("cit-HepTh") == load("cit-HepTh")

    def test_size_ordering_preserved(self):
        """Stand-in sizes keep the original smallest-to-largest order of
        vertex counts within each generator family — and edge counts
        globally track the originals' ordering of the extremes."""
        ms = {name: load(name).m for name in names()}
        assert ms["com-Orkut"] == max(ms.values())  # largest original
        assert ms["cit-HepTh"] == min(ms.values())  # smallest original

    def test_avg_degree_ordering_preserved(self):
        """The originals' avg-degree ordering (Orkut > Pokec > LJ >
        Epinions/cit > DBLP/Amazon > YouTube) survives scaling."""
        avg = {name: graph_stats(load(name)).avg_degree for name in names()}
        assert avg["com-Orkut"] > avg["soc-Pokec"] > avg["soc-LiveJournal1"]
        assert avg["soc-LiveJournal1"] > avg["com-DBLP"]
        assert avg["com-YouTube"] == min(avg.values())

    def test_lt_weights_normalized(self):
        g = load("cit-HepTh", model="LT")
        for v in range(g.n):
            assert g.in_edge_probs(v).sum() <= 1.0 + 1e-9

    def test_ic_weights_within_scale(self):
        s = spec("soc-Pokec")
        g = load("soc-Pokec", model="IC")
        assert g.out_probs.max() < s.weight_scale

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            load("cit-HepTh", model="SIR")

    def test_weight_seed_changes_probs_not_topology(self):
        a = load("cit-HepTh", weight_seed=0)
        b = load("cit-HepTh", weight_seed=1)
        assert np.array_equal(a.out_indices, b.out_indices)
        assert not np.array_equal(a.out_probs, b.out_probs)

    def test_heavy_tail_standins_skewed(self):
        """Graphs standing in for social networks keep degree skew; the
        co-purchase stand-ins stay flat."""
        assert graph_stats(load("soc-Epinions1")).degree_skew > 5
        assert graph_stats(load("com-Amazon")).degree_skew < 3
