"""Tests for makespan computation (repro.parallel.metering)."""

import numpy as np
import pytest

from repro.parallel import lpt_makespan


class TestLptMakespan:
    def test_single_worker_is_serial_sum(self):
        costs = np.array([3.0, 1.0, 2.0])
        assert lpt_makespan(costs, 1) == 6.0

    def test_empty(self):
        assert lpt_makespan(np.empty(0), 4) == 0.0

    def test_lower_bounds_hold(self):
        rng = np.random.default_rng(1)
        costs = rng.random(50) * 10
        for p in (2, 3, 8):
            ms = lpt_makespan(costs, p)
            assert ms >= costs.max() - 1e-12
            assert ms >= costs.sum() / p - 1e-12
            assert ms <= costs.sum() + 1e-12

    def test_exact_small_case(self):
        # LPT on [5, 4, 3, 3, 3] with 2 workers: 5+4 vs... LPT assigns
        # 5 | 4, 3->4(7), 3->5(8), 3->7(10)? walk it: loads 5,4 -> 3 to 4
        # (7) -> 3 to 5 (8) -> 3 to 7 (10). Makespan 10? Recompute:
        # sorted desc [5,4,3,3,3]: 5->w1(5), 4->w2(4), 3->w2(7),
        # 3->w1(8), 3->w2(10)? no: after 7 vs 5... w1=5,w2=7 -> 3 to w1
        # (8); loads 8,7 -> 3 to w2 (10). LPT makespan = 10.
        assert lpt_makespan(np.array([5.0, 4, 3, 3, 3]), 2) == 10.0

    def test_perfect_split(self):
        assert lpt_makespan(np.array([2.0, 2, 2, 2]), 2) == 4.0

    def test_analytic_regime_uses_bound(self):
        # Many small items: the analytic regime returns max(mean, max).
        costs = np.ones(100_000)
        assert lpt_makespan(costs, 10) == pytest.approx(10_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_makespan(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            lpt_makespan(np.array([-1.0]), 2)
