"""Tests for the recovery-enabled SPMD runtime (repro.mpi.resilient)."""

import numpy as np
import pytest

from repro.mpi import (
    Allreduce,
    Barrier,
    Bcast,
    CommStats,
    FaultPlan,
    RankFailedError,
    SimulatedOOMError,
    TransientCommError,
    run_spmd,
    run_spmd_resilient,
)


def _program(rank, size):
    """Deterministic multi-collective program with per-rank local state."""
    local = np.array([rank + 1], dtype=np.int64)
    a = yield Allreduce(local)
    local = local * int(a[0])
    b = yield Allreduce(local, op="max")
    yield Barrier()
    c = yield Bcast(int(b[0]) if rank == 0 else None, root=0)
    return int(a[0]) * 1000 + c


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            run_spmd_resilient(2, _program, policy="pray")

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError, match="at least one rank"):
            run_spmd_resilient(0, _program)


class TestFaultFree:
    def test_matches_plain_runtime(self):
        base, base_stats = run_spmd(4, _program)
        for policy in ("retry", "respawn", "shrink"):
            results, stats, rlog = run_spmd_resilient(4, _program, policy=policy)
            assert results == base
            assert stats.calls == base_stats.calls
            assert stats.payload_bytes == base_stats.payload_bytes
            assert rlog.retries == rlog.respawns == rlog.shrinks == 0


class TestRetry:
    def test_transient_recovered_with_metered_backoff(self):
        base, _ = run_spmd(3, _program)
        results, stats, rlog = run_spmd_resilient(
            3, _program, policy="retry", faults=FaultPlan.parse("transient:@1x2")
        )
        assert results == base
        assert rlog.retries == 2
        assert rlog.backoff_seconds > 0
        retried = [c for c in stats.per_call if c.label == "retry"]
        assert len(retried) == 2

    def test_exhaustion_raises_typed_error(self):
        with pytest.raises(TransientCommError, match="after 3 attempt"):
            run_spmd_resilient(
                3,
                _program,
                policy="retry",
                faults=FaultPlan.parse("transient:@1x9"),
                max_retries=2,
            )

    def test_all_policies_absorb_transients(self):
        base, _ = run_spmd(3, _program)
        for policy in ("respawn", "shrink"):
            results, _, rlog = run_spmd_resilient(
                3, _program, policy=policy, faults=FaultPlan.parse("transient:@0")
            )
            assert results == base
            assert rlog.retries == 1

    def test_retry_does_not_absorb_crashes(self):
        with pytest.raises(RankFailedError):
            run_spmd_resilient(
                3, _program, policy="retry", faults=FaultPlan.parse("crash:1@1")
            )


class TestRespawn:
    def test_bitexact_after_crash(self):
        base, base_stats = run_spmd(4, _program)
        results, stats, rlog = run_spmd_resilient(
            4, _program, policy="respawn", faults=FaultPlan.parse("crash:2@2")
        )
        assert results == base
        assert rlog.respawns == 1
        assert rlog.respawned_ranks == [2]
        # the dead rank replayed its 2 completed collectives
        assert rlog.replayed_calls == 2
        replays = [c for c in stats.per_call if c.label == "replay"]
        assert len(replays) == 2
        # first-time traffic is unchanged; replay rides on top
        assert stats.calls == base_stats.calls + 2

    def test_multiple_crashes_multiple_respawns(self):
        base, _ = run_spmd(4, _program)
        results, _, rlog = run_spmd_resilient(
            4,
            _program,
            policy="respawn",
            faults=FaultPlan.parse("crash:0@1;crash:3@2"),
        )
        assert results == base
        assert rlog.respawns == 2
        assert sorted(rlog.respawned_ranks) == [0, 3]

    def test_oom_not_absorbed_by_respawn(self):
        # Respawning onto the same too-small node would just die again.
        with pytest.raises(SimulatedOOMError):
            run_spmd_resilient(
                3, _program, policy="respawn", faults=FaultPlan.parse("oom:1@1")
            )


class TestShrink:
    def test_survivors_restart_and_dead_rank_yields_none(self):
        shrink_calls = []
        results, _, rlog = run_spmd_resilient(
            4,
            _program,
            policy="shrink",
            faults=FaultPlan.parse("crash:1@2"),
            on_shrink=lambda dead, alive: shrink_calls.append((dead, alive)),
        )
        assert shrink_calls == [((1,), (0, 2, 3))]
        assert rlog.shrinks == 1 and rlog.dead_ranks == [1]
        assert results[1] is None
        # survivors re-ran the program with collectives combining only
        # over the alive set {0, 2, 3}: a = 1+3+4 = 8, b = max(4*8) = 32,
        # so every survivor returns 8*1000 + 32.
        assert [results[r] for r in (0, 2, 3)] == [8032] * 3
        # and the shrunken run is itself deterministic
        again, _, _ = run_spmd_resilient(
            4, _program, policy="shrink", faults=FaultPlan.parse("crash:1@2")
        )
        assert again == results

    def test_shrink_absorbs_oom(self):
        results, _, rlog = run_spmd_resilient(
            3, _program, policy="shrink", faults=FaultPlan.parse("oom:2@0")
        )
        assert rlog.dead_ranks == [2]
        assert results[2] is None

    def test_shrink_to_zero_ranks_propagates(self):
        with pytest.raises(RankFailedError):
            run_spmd_resilient(
                1, _program, policy="shrink", faults=FaultPlan.parse("crash:0@1")
            )


class TestGeneratorHygiene:
    def test_all_generators_closed_on_abort(self):
        closed = []

        def program(rank, size):
            try:
                yield Allreduce(np.array([rank]))
                yield Allreduce(np.array([rank]))
            finally:
                closed.append(rank)

        with pytest.raises(RankFailedError):
            run_spmd_resilient(
                3, program, policy="retry", faults=FaultPlan.parse("crash:1@1")
            )
        assert sorted(closed) == [0, 1, 2]

    def test_respawned_generator_closed_too(self):
        closed = []

        def program(rank, size):
            try:
                a = yield Allreduce(np.array([rank + 1], dtype=np.int64))
                b = yield Allreduce(a)
                return int(b[0])
            finally:
                closed.append(rank)

        results, _, rlog = run_spmd_resilient(
            3, program, policy="respawn", faults=FaultPlan.parse("crash:0@1")
        )
        assert rlog.respawns == 1
        # the crashed incarnation was closed plus every finished rank
        assert sorted(closed) == [0, 0, 1, 2]
        assert results == run_spmd(3, program)[0]

    def test_stats_phase_labels_survive_recovery(self):
        stats = CommStats()

        def program(rank, size):
            stats.set_phase("EstimateTheta")
            yield Allreduce(np.array([rank]))
            yield Allreduce(np.array([rank]))
            return None

        run_spmd_resilient(
            2,
            program,
            policy="respawn",
            faults=FaultPlan.parse("crash:1@1"),
            stats=stats,
        )
        labels = {c.label for c in stats.per_call}
        assert labels == {"EstimateTheta", "replay"}
