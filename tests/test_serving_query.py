"""Query-engine tests (repro.serving.query / repro.serving.cache).

The load-bearing property is CELF ↔ ``select_seeds_sorted`` parity: the
lazy greedy must reproduce the eager argmax selector bit for bit (same
seeds, same covered count, same smallest-id tie-break) on any prefix —
that parity is what makes the θ-estimation replay, and therefore every
served answer, bit-identical to a fresh ``imm()``.
"""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.imm import imm
from repro.imm.select import select_seeds_sorted
from repro.serving import (
    FrozenIndexError,
    FrozenRRRIndex,
    IndexCache,
    InfluenceQueryEngine,
    StaleIndexError,
    freeze_index,
)

K = 5
EPS = 0.5
SEED = 3
CAP = 300


@pytest.fixture(scope="module")
def frozen(ba_graph, tmp_path_factory):
    """One capped frozen index shared by the read-only tests."""
    out = tmp_path_factory.mktemp("serving") / "index"
    index, res = freeze_index(
        ba_graph, K, EPS, "IC", SEED, theta_cap=CAP, out_dir=out
    )
    index.close()
    return out, res


class TestCelfParity:
    def test_matches_eager_selector_on_prefixes(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            for m in (1, 3, 17, CAP // 2, index.num_samples):
                for k in (1, 2, K):
                    seeds, covered = eng._celf_select(m, k)
                    want = select_seeds_sorted(
                        index.collection_view(m), ba_graph.n, k
                    )
                    assert np.array_equal(seeds, want.seeds), (m, k)
                    assert covered == want.covered_samples, (m, k)

    def test_forced_vertices_seat_first(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            m = index.num_samples
            seeds, _ = eng._celf_select(m, K, forced=(42, 7))
            assert seeds[:2].tolist() == [42, 7]
            assert len(np.unique(seeds)) == K

    def test_excluded_vertices_never_picked(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            m = index.num_samples
            free, _ = eng._celf_select(m, K)
            banned = tuple(int(v) for v in free[:2])
            seeds, _ = eng._celf_select(m, K, excluded=banned)
            assert not set(banned) & set(seeds.tolist())

    def test_constraint_errors(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            m = index.num_samples
            with pytest.raises(ValueError, match="exceed k"):
                eng._celf_select(m, 2, forced=(1, 2, 3))
            with pytest.raises(ValueError, match="out of range"):
                eng._celf_select(m, 2, forced=(ba_graph.n,))
            with pytest.raises(ValueError, match="both forced and excluded"):
                eng._celf_select(m, 2, forced=(1,), excluded=(1,))


class TestTopK:
    def test_bit_identical_to_fresh_imm(self, ba_graph, frozen):
        out, fres = frozen
        fresh = imm(ba_graph, K, EPS, "IC", seed=SEED, theta_cap=CAP)
        assert np.array_equal(fres.seeds, fresh.seeds)
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            res = eng.top_k()
            assert np.array_equal(res.seeds, fresh.seeds)
            assert res.theta == fresh.theta
            assert res.coverage_history == fresh.extra["coverage_history"]
            assert res.served_from_index
            assert res.edges_examined == 0

    def test_alternate_k_without_resampling(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out, graph=ba_graph) as index:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            for k in (1, 2, K + 3):
                fresh = imm(ba_graph, k, EPS, "IC", seed=SEED, theta_cap=CAP)
                res = eng.top_k(k)
                assert np.array_equal(res.seeds, fresh.seeds), k
                assert res.theta == fresh.theta
                assert res.samples_added == 0 and res.edges_examined == 0

    def test_in_index_query_needs_no_graph(self, ba_graph, frozen):
        out, _ = frozen
        fresh = imm(ba_graph, K, EPS, "IC", seed=SEED, theta_cap=CAP)
        with FrozenRRRIndex.open(out) as index:  # graph never attached
            eng = InfluenceQueryEngine(index)
            res = eng.top_k()
            assert np.array_equal(res.seeds, fresh.seeds)

    def test_extension_without_graph_is_loud(self, ba_graph, tmp_path):
        # A small index frozen at a saturating cap, queried uncapped-level
        # tight: the replay needs more samples than frozen and must
        # refuse rather than silently answer from too few.
        index, _ = freeze_index(
            ba_graph, K, EPS, "IC", SEED, theta_cap=40, out_dir=tmp_path / "i"
        )
        index.close()
        with FrozenRRRIndex.open(tmp_path / "i") as back:
            back.manifest["theta_cap"] = None  # serve uncapped queries
            eng = InfluenceQueryEngine(back)
            with pytest.raises(FrozenIndexError, match="no graph is attached"):
                eng.top_k()

    def test_stale_graph_is_refused_at_engine(self, ba_graph, frozen):
        out, _ = frozen
        changed = CSRGraph(
            ba_graph.n,
            ba_graph.out_indptr, ba_graph.out_indices, ba_graph.out_probs * 0.5,
            ba_graph.in_indptr, ba_graph.in_indices, ba_graph.in_probs * 0.5,
        )
        with FrozenRRRIndex.open(out) as index:
            with pytest.raises(StaleIndexError):
                InfluenceQueryEngine(index, graph=changed)


class TestTightenAndExtend:
    def test_tighten_reuses_all_landed_samples(self, ba_graph, tmp_path):
        # Uncapped: tightening eps genuinely demands a longer prefix.
        index, _ = freeze_index(
            ba_graph, K, 0.6, "IC", SEED, out_dir=tmp_path / "i"
        )
        try:
            before = index.num_samples
            flat_before = np.asarray(index.arrays()[0]).copy()
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            fresh = imm(ba_graph, K, 0.5, "IC", seed=SEED)
            res = eng.tighten(0.5)
            assert np.array_equal(res.seeds, fresh.seeds)
            assert res.theta == fresh.theta
            assert res.coverage_history == fresh.extra["coverage_history"]
            assert res.samples_reused == min(before, res.num_samples_used)
            assert res.samples_added == index.num_samples - before
            # The sealed prefix is untouched byte for byte.
            flat_now, _, _ = index.arrays()
            assert np.array_equal(
                np.asarray(flat_now[: len(flat_before)]), flat_before
            )
            # The manifest now serves the tightened guarantee by default.
            assert index.manifest["eps"] == 0.5
        finally:
            index.close()
        with FrozenRRRIndex.open(tmp_path / "i", graph=ba_graph) as back:
            assert back.manifest["eps"] == 0.5

    def test_extension_accounts_edges(self, ba_graph, tmp_path):
        index, _ = freeze_index(
            ba_graph, K, 0.6, "IC", SEED, out_dir=tmp_path / "i"
        )
        try:
            eng = InfluenceQueryEngine(index, graph=ba_graph)
            res = eng.top_k(eps=0.5)
            assert res.samples_added > 0
            assert res.edges_examined > 0
            assert eng.edges_examined == res.edges_examined
        finally:
            index.close()


class TestWhatIfAndMarginal:
    def test_what_if_is_pure_index_read(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out) as index:
            eng = InfluenceQueryEngine(index)
            res = eng.what_if(K, forced=(11,), excluded=(1,))
            assert res.seeds[0] == 11
            assert 1 not in res.seeds.tolist()
            assert res.samples_added == 0 and res.edges_examined == 0

    def test_marginal_gain_matches_manual_count(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out) as index:
            eng = InfluenceQueryEngine(index)
            seed_set = np.asarray([5, 9], dtype=np.int64)
            mg = eng.marginal_gain(seed_set)
            n, m = index.n, index.num_samples
            view = index.collection_view()
            covered = sum(
                1 for s in view if np.intersect1d(s, seed_set).size
            )
            assert mg.covered_samples == covered
            assert mg.spread == pytest.approx(covered * n / m)
            assert mg.gains[5] == 0.0 and mg.gains[9] == 0.0
            # Manual marginal for one vertex: alive samples containing it.
            v = int(np.argmax(mg.gains))
            manual = sum(
                1 for s in view
                if v in s and not np.intersect1d(s, seed_set).size
            )
            assert mg.gains[v] == pytest.approx(manual * n / m)

    def test_marginal_gain_cuts_to_sample_prefix(self, ba_graph, frozen):
        """The front end runs pure reads concurrently with one extension
        writer, so the mapped arrays (and the vertex index) can already
        cover samples past a reader's ``num_samples`` snapshot.  Every
        read must cut to that prefix — before the cut this raised a
        numpy ``IndexError`` (``alive`` is ``m``-long, ``sample_of``
        covers the grown tail)."""
        out, _ = frozen
        with FrozenRRRIndex.open(out) as index:
            eng = InfluenceQueryEngine(index)
            full_m = index.num_samples
            m = full_m - 10
            seed_set = np.asarray([5, 9], dtype=np.int64)
            view = index.collection_view(m)
            covered = sum(
                1 for s in view if np.intersect1d(s, seed_set).size
            )
            eng.marginal_gain(seed_set)  # vertex index over the full maps
            # Simulate the race: the sealed-count snapshot lags the maps.
            index.manifest["num_samples"] = m
            mg = eng.marginal_gain(seed_set)
            assert mg.num_samples == m
            assert mg.covered_samples == covered
            assert mg.spread == pytest.approx(covered * index.n / m)
            # The inverse tear (count committed before the remap lands)
            # clamps to the mapped prefix instead of indexing past it.
            index.manifest["num_samples"] = full_m + 10
            over = eng.marginal_gain(seed_set)
            assert over.num_samples == full_m
            eng.what_if(K)  # _celf_select clamps the same way

    def test_marginal_gain_candidates_slice(self, ba_graph, frozen):
        out, _ = frozen
        with FrozenRRRIndex.open(out) as index:
            eng = InfluenceQueryEngine(index)
            full = eng.marginal_gain([5], candidates=None)
            some = eng.marginal_gain([5], candidates=np.asarray([0, 5, 17]))
            assert np.array_equal(some.gains, full.gains[[0, 5, 17]])


class TestIndexCache:
    def test_lru_bounds_and_books(self, ba_graph, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        freeze_index(ba_graph, K, EPS, "IC", SEED, theta_cap=CAP,
                     out_dir=a_dir)[0].close()
        freeze_index(ba_graph, K, 0.6, "IC", SEED, theta_cap=CAP,
                     out_dir=b_dir)[0].close()
        cache = IndexCache(capacity=1)
        try:
            e1 = cache.engine(a_dir, graph=ba_graph)
            assert cache.engine(a_dir) is e1  # hit
            cache.engine(b_dir)  # evicts a
            assert (cache.hits, cache.misses, cache.evictions) == (1, 2, 1)
            assert len(cache) == 1
            e3 = cache.engine(a_dir)  # reopened, a fresh engine
            assert e3 is not e1
        finally:
            cache.close()

    def test_rekeys_after_tighten(self, ba_graph, tmp_path):
        out = tmp_path / "i"
        freeze_index(ba_graph, K, 0.6, "IC", SEED, out_dir=out)[0].close()
        cache = IndexCache(capacity=2)
        try:
            eng = cache.engine(out, graph=ba_graph)
            eng.tighten(0.5)  # amends the manifest in place
            again = cache.engine(out, graph=ba_graph)
            assert len(cache) == 1  # the stale-eps alias was dropped
            assert again.index.manifest["eps"] == 0.5
        finally:
            cache.close()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)
