"""Tests for co-expression inference and centralities (repro.bio)."""

import numpy as np
import pytest

from repro.bio import (
    betweenness_centrality,
    degree_centrality,
    infer_coexpression_network,
    make_expression_dataset,
)
from repro.bio.centrality import top_k
from repro.bio.coexpression import regulator_scores
from repro.graph import from_edge_list, path_graph, star_graph


@pytest.fixture(scope="module")
def mini_ds():
    return make_expression_dataset(
        "tumor",
        num_response_modules=2,
        num_housekeeping_modules=2,
        module_size=5,
        response_shadows=2,
        housekeeping_shadows=3,
        num_bridge=4,
        num_noise=10,
        num_samples=40,
        seed=2,
    )


class TestRegulatorScores:
    def test_shape_and_diagonal(self, mini_ds):
        s = regulator_scores(mini_ds.values)
        assert s.shape == (mini_ds.num_features, mini_ds.num_features)
        assert np.all(np.diag(s) == 0.0)
        assert s.min() >= 0.0 and s.max() <= 1.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            regulator_scores(np.zeros((3, 1)))


class TestInferNetwork:
    def test_structure(self, mini_ds):
        g = infer_coexpression_network(mini_ds, regulators_per_target=3)
        assert g.n == mini_ds.num_features
        # every vertex has at most 3 in-edges (top-3 regulators)
        assert g.in_degree().max() <= 3
        assert g.out_probs.min() >= 0.0
        assert g.out_probs.max() <= 0.35

    def test_no_self_loops(self, mini_ds):
        g = infer_coexpression_network(mini_ds)
        assert all(u != v for u, v, _ in g.edges())

    def test_noise_targets_get_weak_edges(self, mini_ds):
        g = infer_coexpression_network(mini_ds)
        noise_ids = range(mini_ds.num_features - 10, mini_ds.num_features)
        for v in noise_ids:
            probs = g.in_edge_probs(v)
            if len(probs):
                assert probs.max() < 0.1  # r^2 ~ 1/samples

    def test_core_has_strong_shadow_edges(self, mini_ds):
        g = infer_coexpression_network(mini_ds)
        # response core 0's shadows are the first shadow rows (ids 20, 21)
        assert g.has_edge(0, 20) or g.has_edge(20, 0)

    def test_validation(self, mini_ds):
        with pytest.raises(ValueError):
            infer_coexpression_network(mini_ds, regulators_per_target=0)
        with pytest.raises(ValueError):
            infer_coexpression_network(mini_ds, p_max=0.0)


class TestDegreeCentrality:
    def test_counts_both_directions(self):
        g = star_graph(5)
        deg = degree_centrality(g)
        assert deg[0] == 4  # hub: 4 out, 0 in
        assert deg[1] == 1

    def test_top_k(self):
        scores = np.array([3.0, 9.0, 9.0, 1.0])
        assert top_k(scores, 2).tolist() == [1, 2]
        with pytest.raises(ValueError):
            top_k(scores, 0)


class TestBetweenness:
    def test_path_graph_analytic(self):
        # Directed path 0->1->2->3->4: bc(v) = paths through v.
        g = path_graph(5)
        bc = betweenness_centrality(g, normalized=False)
        # vertex 1 lies on paths 0->2, 0->3, 0->4 = 3; vertex 2 on 0->3,
        # 0->4, 1->3, 1->4 = 4; symmetric for 3.
        assert bc.tolist() == [0.0, 3.0, 4.0, 3.0, 0.0]

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(3)
        n = 40
        edges = [(int(u), int(v)) for u, v in rng.integers(0, n, (150, 2)) if u != v]
        g = from_edge_list(n, edges)
        g_nx = nx.DiGraph()
        g_nx.add_nodes_from(range(n))
        g_nx.add_edges_from((u, v) for u, v, _ in g.edges())
        expected = nx.betweenness_centrality(g_nx, normalized=True)
        got = betweenness_centrality(g, normalized=True)
        for v in range(n):
            assert got[v] == pytest.approx(expected[v], abs=1e-9)

    def test_star_center_dominates(self):
        # bidirectional star: all spoke-to-spoke paths cross the hub
        edges = [(0, i) for i in range(1, 8)] + [(i, 0) for i in range(1, 8)]
        g = from_edge_list(8, edges)
        bc = betweenness_centrality(g)
        assert bc[0] > bc[1:].max()
