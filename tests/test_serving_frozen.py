"""Frozen index format tests (repro.serving.frozen).

Freeze/open round trips, the integrity seal, the graph fingerprint
binding, zero-copy prefix views, in-place extension, and manifest
amendment.
"""

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.imm.select import select_seeds_sorted
from repro.sampling import SortedRRRCollection, sample_batch
from repro.serving import (
    FrozenCollectionView,
    FrozenIndexError,
    FrozenRRRIndex,
    StaleIndexError,
    graph_fingerprint,
)

SEED = 3
THETA = 60


def _sampled(graph, theta=THETA):
    coll = SortedRRRCollection(graph.n)
    batch = sample_batch(graph, "IC", coll, theta, SEED)
    return coll, batch


def _freeze(graph, coll, batch, out_dir, **kw):
    kw.setdefault("graph", graph)
    return FrozenRRRIndex.freeze(
        coll, out_dir, model="IC", seed=SEED, k=5, eps=0.5,
        edges=batch.per_sample_edges, **kw,
    )


class TestFreezeOpen:
    def test_roundtrip_bitwise(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        index.close()
        with FrozenRRRIndex.open(tmp_path / "idx", graph=ba_graph) as back:
            flat, indptr, sample_of = back.arrays()
            ref_flat, ref_indptr, ref_sample_of = coll.flattened()
            assert np.array_equal(np.asarray(flat), ref_flat)
            assert np.array_equal(indptr, ref_indptr)
            assert np.array_equal(sample_of, ref_sample_of)
            assert np.array_equal(
                np.asarray(back.per_sample_edges()), batch.per_sample_edges
            )
            assert back.n == ba_graph.n
            assert back.num_samples == THETA

    def test_freeze_from_collection_needs_edge_meters(self, ba_graph, tmp_path):
        coll, _ = _sampled(ba_graph)
        with pytest.raises(ValueError, match="examined-edge meters"):
            FrozenRRRIndex.freeze(
                coll, tmp_path / "idx", graph=ba_graph,
                model="IC", seed=SEED, k=5, eps=0.5,
            )

    def test_open_is_zero_copy(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        index.close()
        with FrozenRRRIndex.open(tmp_path / "idx") as back:
            flat, _, _ = back.arrays()
            assert isinstance(flat, np.memmap)

    def test_open_rejects_foreign_directory(self, tmp_path):
        (tmp_path / "INDEX.json").write_text('{"format": "something-else"}')
        with pytest.raises(FrozenIndexError, match="not a frozen RRR index"):
            FrozenRRRIndex.open(tmp_path)

    def test_closed_index_refuses_reads(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        index.close()
        with pytest.raises(FrozenIndexError, match="closed"):
            index.arrays()


class TestSeal:
    def test_wrong_file_size_fails(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        _freeze(ba_graph, coll, batch, tmp_path / "idx").close()
        p = tmp_path / "idx" / "sizes.i64.bin"
        p.write_bytes(p.read_bytes()[:-8])
        with pytest.raises(FrozenIndexError, match="torn or was edited"):
            FrozenRRRIndex.open(tmp_path / "idx")

    def test_tampered_sample_count_fails_stream_fold(self, ba_graph, tmp_path):
        import json

        coll, batch = _sampled(ba_graph)
        _freeze(ba_graph, coll, batch, tmp_path / "idx").close()
        mpath = tmp_path / "idx" / "INDEX.json"
        manifest = json.loads(mpath.read_text())
        # Claim one sample fewer, shaving the binaries to match the fake
        # count so only the stream fingerprint can notice.
        last = manifest["num_samples"] - 1
        sizes = np.fromfile(tmp_path / "idx" / "sizes.i64.bin", dtype=np.int64)
        manifest["num_samples"] = last
        manifest["entries"] = int(sizes[:last].sum())
        mpath.write_text(json.dumps(manifest))
        for name, width in (("flat.i32.bin", 4), ("sizes.i64.bin", 8),
                            ("edges.i64.bin", 8)):
            p = tmp_path / "idx" / name
            want = (manifest["entries"] if name.startswith("flat") else last) * width
            p.write_bytes(p.read_bytes()[:want])
        with pytest.raises(FrozenIndexError, match="stream fingerprint"):
            FrozenRRRIndex.open(tmp_path / "idx")


class TestGraphBinding:
    def test_fingerprint_is_content_addressed(self, ba_graph):
        clone = CSRGraph(
            ba_graph.n,
            ba_graph.out_indptr.copy(), ba_graph.out_indices.copy(),
            ba_graph.out_probs.copy(),
            ba_graph.in_indptr.copy(), ba_graph.in_indices.copy(),
            ba_graph.in_probs.copy(),
        )
        assert graph_fingerprint(clone) == graph_fingerprint(ba_graph)
        nudged = CSRGraph(
            ba_graph.n,
            ba_graph.out_indptr, ba_graph.out_indices, ba_graph.out_probs * 0.999,
            ba_graph.in_indptr, ba_graph.in_indices, ba_graph.in_probs * 0.999,
        )
        assert graph_fingerprint(nudged) != graph_fingerprint(ba_graph)

    def test_open_with_changed_graph_raises(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        _freeze(ba_graph, coll, batch, tmp_path / "idx").close()
        changed = CSRGraph(
            ba_graph.n,
            ba_graph.out_indptr, ba_graph.out_indices, ba_graph.out_probs * 0.5,
            ba_graph.in_indptr, ba_graph.in_indices, ba_graph.in_probs * 0.5,
        )
        with pytest.raises(StaleIndexError, match="stale index"):
            FrozenRRRIndex.open(tmp_path / "idx", graph=changed)
        # Without a graph the open still succeeds (pure in-index serving).
        FrozenRRRIndex.open(tmp_path / "idx").close()

    def test_unbound_index_accepts_any_graph(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = FrozenRRRIndex.freeze(
            coll, tmp_path / "idx", graph=None, n=ba_graph.n,
            model="IC", seed=SEED, k=5, eps=0.5,
            edges=batch.per_sample_edges,
        )
        index.close()
        FrozenRRRIndex.open(tmp_path / "idx", graph=ba_graph).close()


class TestPrefixViews:
    def test_view_matches_prefix_selection(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        try:
            for m in (1, 7, THETA // 2, THETA):
                view = index.collection_view(m)
                assert len(view) == m
                prefix = SortedRRRCollection(ba_graph.n)
                sample_batch(ba_graph, "IC", prefix, m, SEED)
                got = select_seeds_sorted(view, ba_graph.n, 3)
                want = select_seeds_sorted(prefix, ba_graph.n, 3)
                assert np.array_equal(got.seeds, want.seeds)
                assert got.covered_samples == want.covered_samples
        finally:
            index.close()

    def test_views_are_read_only(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        try:
            view = index.collection_view()
            with pytest.raises(FrozenIndexError, match="read-only"):
                view.append(np.asarray([1, 2], dtype=np.int64))
            with pytest.raises(FrozenIndexError, match="read-only"):
                view.append_batch(
                    np.asarray([1], dtype=np.int64),
                    np.asarray([1], dtype=np.int64),
                )
            assert isinstance(view, FrozenCollectionView)
        finally:
            index.close()


class TestExtend:
    def test_extend_appends_and_reseals(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        try:
            full = SortedRRRCollection(ba_graph.n)
            full_batch = sample_batch(ba_graph, "IC", full, THETA + 20, SEED)
            f_flat, f_indptr, _ = full.flattened()
            tail_lo = f_indptr[THETA]
            index.extend(
                f_flat[tail_lo:].astype(np.int32),
                np.diff(f_indptr)[THETA:],
                full_batch.per_sample_edges[THETA:],
                start=THETA,
            )
            assert index.num_samples == THETA + 20
            flat, indptr, _ = index.arrays()
            assert np.array_equal(np.asarray(flat), f_flat)
            assert np.array_equal(indptr, f_indptr)
        finally:
            index.close()
        # The extended artifact survives a fresh open + seal check.
        with FrozenRRRIndex.open(tmp_path / "idx", graph=ba_graph) as back:
            assert back.num_samples == THETA + 20

    def test_extend_must_start_at_sealed_count(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        try:
            one = np.asarray([2], dtype=np.int64)
            with pytest.raises(FrozenIndexError, match="must start at"):
                index.extend(
                    np.asarray([1, 3], dtype=np.int32), one * 2, one,
                    start=THETA + 1,
                )
            with pytest.raises(FrozenIndexError, match="inconsistent"):
                index.extend(
                    np.asarray([1], dtype=np.int32),
                    np.asarray([2], dtype=np.int64),
                    one, start=THETA,
                )
        finally:
            index.close()


class TestAmend:
    def test_amend_persists_and_restricts(self, ba_graph, tmp_path):
        coll, batch = _sampled(ba_graph)
        index = _freeze(ba_graph, coll, batch, tmp_path / "idx")
        try:
            index.amend(eps=0.3, theta=THETA, coverage_history=[(THETA, 0.5)])
            with pytest.raises(ValueError, match="not amendable"):
                index.amend(seed=99)
            with pytest.raises(ValueError, match="not amendable"):
                index.amend(num_samples=1)
        finally:
            index.close()
        with FrozenRRRIndex.open(tmp_path / "idx") as back:
            assert back.manifest["eps"] == 0.3
            assert back.manifest["coverage_history"] == [[THETA, 0.5]]
            assert back.seed == SEED  # identity untouched
