"""Tests for the community-based extension (repro.community)."""

import numpy as np
import pytest

from repro.community import community_imm, label_propagation
from repro.community.communityimm import _allocate_budget
from repro.diffusion import estimate_spread
from repro.graph import stochastic_block_model, uniform_random_weights
from repro.imm import imm


@pytest.fixture(scope="module")
def sbm_graph():
    """Two dense blocks, sparse between: planted community structure."""
    g = stochastic_block_model([60, 60], 0.25, 0.004, seed=3)
    return uniform_random_weights(g, seed=1, scale=0.25)


class TestLabelPropagation:
    def test_recovers_planted_blocks(self, sbm_graph):
        labels = label_propagation(sbm_graph, seed=1)
        # within each planted block the dominant label covers most vertices
        for block in (slice(0, 60), slice(60, 120)):
            block_labels = labels[block]
            _, counts = np.unique(block_labels, return_counts=True)
            assert counts.max() >= 45
        # and the two blocks mostly carry different labels
        dom0 = np.bincount(labels[:60]).argmax()
        dom1 = np.bincount(labels[60:]).argmax()
        assert dom0 != dom1

    def test_deterministic(self, sbm_graph):
        a = label_propagation(sbm_graph, seed=5)
        b = label_propagation(sbm_graph, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_labels_dense(self, sbm_graph):
        labels = label_propagation(sbm_graph, seed=1)
        assert labels.min() == 0
        assert set(np.unique(labels)) == set(range(labels.max() + 1))

    def test_empty_graph(self):
        from repro.graph import from_edge_list

        g = from_edge_list(0, [])
        assert len(label_propagation(g)) == 0

    def test_validation(self, sbm_graph):
        with pytest.raises(ValueError):
            label_propagation(sbm_graph, max_rounds=0)


class TestAllocateBudget:
    def test_sums_to_k(self):
        sizes = np.array([50, 30, 20], dtype=np.int64)
        alloc = _allocate_budget(sizes, 10)
        assert alloc.sum() == 10
        assert alloc[0] >= alloc[1] >= alloc[2]

    def test_capacity_respected(self):
        sizes = np.array([2, 98], dtype=np.int64)
        alloc = _allocate_budget(sizes, 10)
        assert alloc[0] <= 2
        assert alloc.sum() == 10

    def test_exact_proportional_case(self):
        alloc = _allocate_budget(np.array([60, 40], dtype=np.int64), 5)
        assert alloc.tolist() == [3, 2]


class TestCommunityIMM:
    def test_valid_seed_set(self, sbm_graph):
        res = community_imm(sbm_graph, k=8, eps=0.5, seed=2)
        assert len(res.seeds) == 8
        assert len(np.unique(res.seeds)) == 8
        assert res.num_communities >= 1

    def test_seeds_split_across_blocks(self, sbm_graph):
        """Proportional allocation puts seeds in both planted blocks."""
        res = community_imm(sbm_graph, k=8, eps=0.5, seed=2)
        in_first = (res.seeds < 60).sum()
        assert 1 <= in_first <= 7

    def test_quality_close_to_whole_graph_imm(self, sbm_graph):
        """With near-disjoint communities the decomposition loses little
        (its advertised sweet spot)."""
        comm = community_imm(sbm_graph, k=8, eps=0.5, seed=2)
        full = imm(sbm_graph, k=8, eps=0.5, seed=2)
        s_comm = estimate_spread(sbm_graph, comm.seeds, "IC", trials=200, seed=7).mean
        s_full = estimate_spread(sbm_graph, full.seeds, "IC", trials=200, seed=7).mean
        assert s_comm >= 0.8 * s_full

    def test_custom_labels(self, sbm_graph):
        labels = np.zeros(sbm_graph.n, dtype=np.int64)
        labels[60:] = 1
        res = community_imm(sbm_graph, k=6, eps=0.5, seed=1, labels=labels)
        assert set(res.allocation) == {0, 1}
        assert sum(res.allocation.values()) == 6

    def test_validation(self, sbm_graph):
        with pytest.raises(ValueError):
            community_imm(sbm_graph, k=0, eps=0.5)
        with pytest.raises(ValueError):
            community_imm(
                sbm_graph, k=3, eps=0.5, labels=np.zeros(3, dtype=np.int64)
            )
