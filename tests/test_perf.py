"""Tests for the instrumentation package (repro.perf)."""

import time

import pytest

from repro.imm import imm
from repro.parallel import PUMA
from repro.perf import (
    MemoryModel,
    PhaseBreakdown,
    PhaseTimer,
    WorkCounters,
    collection_bytes,
    graph_bytes,
    modeled_serial_breakdown,
    peak_rss_bytes,
    profile_run,
)
from repro.sampling import SortedRRRCollection

import numpy as np


class TestPhaseTimer:
    def test_measures_wall_time(self):
        timer = PhaseTimer()
        with timer.phase("Sample"):
            time.sleep(0.01)
        assert timer.seconds("Sample") >= 0.009

    def test_charge_accumulates(self):
        timer = PhaseTimer()
        timer.charge("Other", 1.5)
        timer.charge("Other", 0.5)
        assert timer.seconds("Other") == 2.0

    def test_nested_phases_rejected(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError, match="active"):
            with timer.phase("Sample"):
                with timer.phase("Other"):
                    pass

    def test_unknown_phase_rejected(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            timer.charge("Bogus", 1.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().charge("Sample", -1.0)

    def test_breakdown_roundtrip(self):
        timer = PhaseTimer()
        timer.charge("EstimateTheta", 1.0)
        timer.charge("Sample", 2.0)
        b = timer.breakdown()
        assert b.total == 3.0
        assert b.as_dict()["Sample"] == 2.0


class TestPhaseBreakdown:
    def test_add_and_scale(self):
        a = PhaseBreakdown(1.0, 2.0, 3.0, 4.0)
        b = PhaseBreakdown(1.0, 1.0, 1.0, 1.0)
        s = a + b
        assert s.total == 14.0
        assert a.scaled(2.0).sample == 4.0


class TestWorkCounters:
    def test_merge(self):
        a = WorkCounters(edges_examined=10, samples_generated=2)
        b = WorkCounters(edges_examined=5, counter_updates=7)
        a.merge(b)
        assert a.edges_examined == 15
        assert a.counter_updates == 7
        assert a.as_dict()["samples_generated"] == 2


class TestMemory:
    def test_collection_and_graph_bytes(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        coll.append(np.array([0, 1, 2], np.int32))
        assert collection_bytes(coll) == coll.nbytes_model()
        # graph replica: 8-byte offsets, 4+4 bytes per edge, two directions
        expected = 2 * (8 * (ba_graph.n + 1) + 8 * ba_graph.m)
        assert graph_bytes(ba_graph) == expected

    def test_memory_model_total(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        coll.append(np.array([0, 1], np.int32))
        model = MemoryModel.for_rank(ba_graph, coll)
        assert model.total == model.graph_replica + model.collection + model.counters
        assert model.counters == 2 * 8 * ba_graph.n

    def test_peak_rss(self):
        with peak_rss_bytes() as peak:
            data = np.zeros(1_000_000)  # ~8 MB
            data += 1
        assert peak[0] > 7_000_000


class TestProfileRun:
    def test_returns_result_and_report(self):
        result, report = profile_run(sum, [1, 2, 3])
        assert result == 6
        assert "function calls" in report

    def test_top_validation(self):
        with pytest.raises(ValueError):
            profile_run(sum, [1], top=0)


class TestLayoutModel:
    def test_hypergraph_slower_than_sorted(self, ba_graph):
        """The Table 2 modeled-speedup mechanism."""
        ref = imm(ba_graph, k=8, eps=0.5, seed=2, layout="hypergraph")
        opt = imm(ba_graph, k=8, eps=0.5, seed=2, layout="sorted")
        t_ref = modeled_serial_breakdown(ref, PUMA).total
        t_opt = modeled_serial_breakdown(opt, PUMA).total
        assert 1.5 < t_ref / t_opt < 6.0  # the paper's band, with slack

    def test_breakdown_proportions_follow_measurement(self, ba_graph):
        res = imm(ba_graph, k=8, eps=0.5, seed=2)
        model = modeled_serial_breakdown(res, PUMA)
        measured = res.breakdown
        assert model.estimate_theta / model.total == pytest.approx(
            measured.estimate_theta / measured.total, abs=1e-9
        )

    def test_rejects_parallel_results(self, ba_graph):
        from repro.parallel import imm_mt

        res = imm_mt(ba_graph, k=5, eps=0.5, num_threads=4, seed=1)
        with pytest.raises(ValueError, match="serial"):
            modeled_serial_breakdown(res, PUMA)
