"""Tests for greedy seed selection (repro.imm.select)."""

import itertools

import numpy as np
import pytest

from repro.imm import select_seeds, select_seeds_hypergraph, select_seeds_sorted
from repro.sampling import HypergraphRRRCollection, SortedRRRCollection


def build(sets, n, layout):
    coll = (SortedRRRCollection if layout == "sorted" else HypergraphRRRCollection)(n)
    for s in sets:
        coll.append(np.asarray(sorted(s), np.int32))
    return coll


def brute_force_cover(sets, n, k):
    """Optimal max-coverage by exhaustive search (small instances only)."""
    best = -1
    for combo in itertools.combinations(range(n), k):
        chosen = set(combo)
        covered = sum(1 for s in sets if chosen & set(s))
        best = max(best, covered)
    return best


SETS = [
    {0, 1, 2},
    {1, 2},
    {2, 3},
    {3},
    {4},
    {0, 4},
]


class TestGreedyCorrectness:
    def test_first_pick_is_max_count(self):
        coll = build(SETS, 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 1)
        # vertex 2 appears in 3 sets — the unique max
        assert sel.seeds.tolist() == [2]
        assert sel.covered_samples == 3

    def test_coverage_counts_match_manual(self):
        coll = build(SETS, 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 2)
        # after 2: remaining sets {3}, {4}, {0,4}; best second = 4 (covers 2)
        assert sel.seeds.tolist() == [2, 4]
        assert sel.covered_samples == 5

    def test_greedy_achieves_63_percent_of_optimum(self):
        """(1 - 1/e) guarantee of greedy max-coverage, checked against
        brute force on random small instances."""
        rng = np.random.default_rng(0)
        for trial in range(10):
            n = 8
            sets = [
                set(rng.choice(n, size=rng.integers(1, 4), replace=False).tolist())
                for _ in range(12)
            ]
            k = 3
            coll = build(sets, n, "sorted")
            sel = select_seeds_sorted(coll, n, k)
            optimum = brute_force_cover(sets, n, k)
            assert sel.covered_samples >= (1 - 1 / np.e) * optimum - 1e-9

    def test_ties_break_to_smallest_id(self):
        coll = build([{3}, {1}], 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 1)
        assert sel.seeds.tolist() == [1]

    def test_k_larger_than_useful_vertices(self):
        coll = build([{0}, {1}], 3, "sorted")
        sel = select_seeds_sorted(coll, 3, 3)
        assert len(sel.seeds) == 3
        assert len(set(sel.seeds.tolist())) == 3  # no duplicate seeds
        assert sel.covered_samples == 2


class TestLayoutEquivalence:
    def test_identical_seeds_on_random_instances(self):
        rng = np.random.default_rng(4)
        for trial in range(8):
            n = 20
            sets = [
                set(rng.choice(n, size=rng.integers(1, 6), replace=False).tolist())
                for _ in range(40)
            ]
            a = select_seeds(build(sets, n, "sorted"), n, 5)
            b = select_seeds(build(sets, n, "hypergraph"), n, 5)
            assert a.seeds.tolist() == b.seeds.tolist()
            assert a.covered_samples == b.covered_samples

    def test_dispatch_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            select_seeds([], 5, 1)


class TestMetering:
    def test_per_rank_entries_sum_to_total_work(self):
        coll = build(SETS, 5, "sorted")
        one = select_seeds_sorted(coll, 5, 2, num_ranks=1)
        four = select_seeds_sorted(build(SETS, 5, "sorted"), 5, 2, num_ranks=4)
        assert four.per_rank_entries.sum() == one.per_rank_entries.sum()
        assert four.num_ranks == 4

    def test_counting_pass_work_equals_entries(self):
        coll = build(SETS, 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 1)
        # counting pass scans every incidence once at minimum
        assert sel.entries_scanned >= coll.total_entries
        assert sel.counter_updates >= coll.total_entries

    def test_argmax_scans(self):
        coll = build(SETS, 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 3)
        assert sel.argmax_scans == 3 * 5

    def test_coverage_fraction(self):
        coll = build(SETS, 5, "sorted")
        sel = select_seeds_sorted(coll, 5, 2)
        assert sel.coverage_fraction(len(coll)) == pytest.approx(5 / 6)
        assert sel.coverage_fraction(0) == 0.0


class TestTieBreakContract:
    """Equal membership counts must resolve to the smallest vertex id in
    *every* selector — the cross-implementation contract the equivalence
    oracle (repro.validate) relies on."""

    # counts: vertex 2 -> 2, vertex 4 -> 2 (tied); all others 0 or less.
    TIED_SETS = [{2}, {2, 4}, {4}]
    N = 6

    def _run_dist(self, partitions, n, k):
        """Drive _dist_select via the real SPMD harness, one partition of
        the sample space per rank."""
        from repro.mpi.comm import run_spmd
        from repro.mpi.distributed import _dist_select

        out = {}

        def program(rank, size):
            coll = build(partitions[rank], n, "sorted")
            seeds, covered, _ = yield from _dist_select(coll, n, k)
            out[rank] = (seeds.tolist(), covered)
            return rank

        run_spmd(len(partitions), program)
        return out

    def test_sorted_breaks_tie_to_smallest(self):
        sel = select_seeds_sorted(build(self.TIED_SETS, self.N, "sorted"), self.N, 2)
        assert sel.seeds.tolist() == [2, 4]

    def test_hypergraph_breaks_tie_to_smallest(self):
        sel = select_seeds_hypergraph(
            build(self.TIED_SETS, self.N, "hypergraph"), self.N, 2
        )
        assert sel.seeds.tolist() == [2, 4]

    def test_dist_breaks_tie_to_smallest_single_rank(self):
        out = self._run_dist([self.TIED_SETS], self.N, 2)
        assert out[0] == ([2, 4], 3)

    def test_dist_breaks_tie_to_smallest_two_ranks(self):
        # Split the tied sets across ranks: the tie now only exists in the
        # All-Reduced global counters, never in any local view.
        parts = [[{2}, {4}], [{2, 4}]]
        out = self._run_dist(parts, self.N, 2)
        assert out[0][0] == [2, 4]
        assert out[1][0] == [2, 4]  # every rank agrees on the argmax
        assert out[0][1] == 3  # global covered total is All-Reduced too

    def test_all_three_selectors_agree_on_random_ties(self):
        """Random instances engineered to be tie-rich (tiny vertex range,
        many duplicate sets)."""
        rng = np.random.default_rng(11)
        for trial in range(6):
            n = 6
            sets = [
                set(rng.choice(n, size=rng.integers(1, 3), replace=False).tolist())
                for _ in range(10)
            ]
            a = select_seeds_sorted(build(sets, n, "sorted"), n, 3).seeds.tolist()
            b = select_seeds_hypergraph(
                build(sets, n, "hypergraph"), n, 3
            ).seeds.tolist()
            parts = [sets[0::2], sets[1::2]]
            out = self._run_dist(parts, n, 3)
            assert a == b == out[0][0] == out[1][0]


class TestValidation:
    def test_bad_k(self):
        coll = build(SETS, 5, "sorted")
        with pytest.raises(ValueError):
            select_seeds_sorted(coll, 5, 0)
        with pytest.raises(ValueError):
            select_seeds_sorted(coll, 5, 6)

    def test_bad_ranks(self):
        coll = build(SETS, 5, "sorted")
        with pytest.raises(ValueError):
            select_seeds_sorted(coll, 5, 1, num_ranks=0)

    def test_hypergraph_bad_k(self):
        coll = build(SETS, 5, "hypergraph")
        with pytest.raises(ValueError):
            select_seeds_hypergraph(coll, 5, 0)
