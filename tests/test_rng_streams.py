"""Tests for the stream-partition helpers (repro.rng.streams)."""

import pytest

from repro.rng import Lcg64, sample_stream, spawn_streams


class TestSpawnStreams:
    def test_partition_covers_serial_sequence(self):
        master = Lcg64(17)
        serial = [master.next_u64() for _ in range(40)]
        streams = spawn_streams(17, 4)
        got = []
        for i in range(10):
            for s in streams:
                got.append(s.next_u64())
        assert got == serial

    def test_single_stream_is_master(self):
        (only,) = spawn_streams(5, 1)
        master = Lcg64(5)
        assert [only.next_u64() for _ in range(5)] == [
            master.next_u64() for _ in range(5)
        ]

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(0, 0)


class TestSampleStream:
    def test_deterministic_per_index(self):
        assert sample_stream(3, 10).next_u64() == sample_stream(3, 10).next_u64()

    def test_distinct_indices_distinct_streams(self):
        a = sample_stream(3, 10).next_u64_block(8)
        b = sample_stream(3, 11).next_u64_block(8)
        assert a.tolist() != b.tolist()

    def test_distinct_seeds_distinct_streams(self):
        a = sample_stream(3, 10).next_u64()
        b = sample_stream(4, 10).next_u64()
        assert a != b

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            sample_stream(0, -1)
