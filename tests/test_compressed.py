"""Tests for the compressed RRR layout (repro.sampling.compressed).

Codec round-trip properties, decode fuzzing (truncated / corrupt coded
bytes must raise typed errors, never return garbage), collection
semantics parity with the sorted layout, and selection bit-parity.
"""

import numpy as np
import pytest

from repro.imm.select import select_seeds_compressed, select_seeds_sorted
from repro.sampling import (
    CompressedRRRCollection,
    CorruptCodedStreamError,
    SortedRRRCollection,
    TruncatedCodedStreamError,
    decode_varints,
    encode_varints,
    sample_batch,
)
from repro.sampling.compressed import MAX_VARINT_BYTES

SETS = [np.array([0, 2, 5], np.int32), np.array([1], np.int32), np.array([2, 5], np.int32)]


def build(sets, n=6):
    coll = CompressedRRRCollection(n)
    for s in sets:
        coll.append(s)
    return coll


class TestVarintCodec:
    def test_round_trip_small_values(self):
        values = np.arange(0, 300, dtype=np.int64)
        assert decode_varints(encode_varints(values)).tolist() == values.tolist()

    def test_zero_encodes_to_single_byte(self):
        coded = encode_varints(np.array([0], np.int64))
        assert coded.tolist() == [0]
        assert decode_varints(coded).tolist() == [0]

    def test_seven_bit_boundaries(self):
        # One value either side of every limb boundary.
        edges = []
        for bits in range(7, 63, 7):
            edges += [(1 << bits) - 1, 1 << bits]
        edges.append((1 << 63) - 1)  # int64 max: the 9-byte ceiling
        values = np.array(edges, np.int64)
        assert decode_varints(encode_varints(values)).tolist() == values.tolist()

    def test_max_int64_round_trips_in_nine_bytes(self):
        coded = encode_varints(np.array([2**63 - 1], np.int64))
        assert len(coded) == MAX_VARINT_BYTES
        assert decode_varints(coded).tolist() == [2**63 - 1]

    def test_random_batch_round_trip(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 2**40, size=2000, dtype=np.int64)
        assert np.array_equal(decode_varints(encode_varints(values)), values)

    def test_empty_batch(self):
        assert encode_varints(np.empty(0, np.int64)).size == 0
        assert decode_varints(np.empty(0, np.uint8)).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            encode_varints(np.array([-1], np.int64))


class TestDecodeFuzz:
    def test_truncated_stream_typed_error(self):
        coded = encode_varints(np.array([1000, 2000], np.int64))
        with pytest.raises(TruncatedCodedStreamError):
            decode_varints(coded[:-1])

    def test_lone_continuation_byte(self):
        with pytest.raises(TruncatedCodedStreamError):
            decode_varints(np.array([0x80], np.uint8))

    def test_overlong_varint_typed_error(self):
        # 10 continuation-flagged bytes + terminator: beyond the 9-byte
        # bound our encoder can produce.
        buf = np.full(MAX_VARINT_BYTES + 1, 0x80, np.uint8)
        buf = np.append(buf, np.uint8(1))
        with pytest.raises(CorruptCodedStreamError):
            decode_varints(buf)

    def test_typed_errors_are_value_errors(self):
        # Callers treating decode failures as data validation keep working.
        with pytest.raises(ValueError):
            decode_varints(np.array([0x80], np.uint8))
        assert issubclass(TruncatedCodedStreamError, ValueError)
        assert issubclass(CorruptCodedStreamError, ValueError)

    def test_truncated_collection_stream(self):
        coll = build(SETS)
        coll._buf[coll._bytes - 1] |= 0x80  # final byte claims continuation
        with pytest.raises(TruncatedCodedStreamError):
            coll.parse_stream()
        with pytest.raises(TruncatedCodedStreamError):
            coll.decode_samples(np.array([len(SETS) - 1]))

    def test_corrupt_offset_index(self):
        coll = build(SETS)
        coll._ends[len(SETS) - 1] += 1  # offset disagrees with the bytes
        with pytest.raises(CorruptCodedStreamError):
            coll.parse_stream()

    def test_zero_delta_rejected_per_sample(self):
        coll = build([np.array([2, 3], np.int32)])
        coll._ensure_ranked()
        # Overwrite the gap varint with 0 — a duplicate rank.
        coll._buf[coll._bytes - 1] = 0
        with pytest.raises(CorruptCodedStreamError):
            coll[0]

    def test_out_of_range_rank_rejected(self):
        coll = build([np.array([0], np.int32)], n=2)
        coll._ensure_ranked()
        coll._buf[0] = 5  # rank 5 in a 2-vertex collection
        with pytest.raises(CorruptCodedStreamError):
            coll.parse_stream()
        with pytest.raises(CorruptCodedStreamError):
            coll[0]


class TestCompressedCollection:
    def test_append_and_iterate(self):
        coll = build(SETS)
        assert len(coll) == 3
        assert coll.total_entries == 6
        assert [s.tolist() for s in coll] == [[0, 2, 5], [1], [2, 5]]
        assert coll[1].tolist() == [1]
        assert coll[-1].tolist() == [2, 5]

    def test_single_vertex_and_max_id_samples(self):
        coll = build([np.array([0], np.int32), np.array([5], np.int32)])
        assert [s.tolist() for s in coll] == [[0], [5]]
        assert coll.counters().tolist() == [1, 0, 0, 0, 0, 1]

    def test_counters_match_sorted_layout(self):
        sorted_coll = SortedRRRCollection(6)
        sorted_coll.extend(SETS)
        assert build(SETS).counters().tolist() == sorted_coll.counters().tolist()

    def test_append_batch_matches_appends(self):
        a = build(SETS)
        b = CompressedRRRCollection(6)
        b.append_batch(
            np.concatenate(SETS).astype(np.int64),
            np.array([len(s) for s in SETS], np.int64),
            total=6,
        )
        assert [s.tolist() for s in a] == [s.tolist() for s in b]
        assert a.counters().tolist() == b.counters().tolist()

    def test_empty_batch_is_noop(self):
        coll = build(SETS)
        before = (coll.coded_bytes, len(coll), coll.total_entries)
        coll.append_batch(np.empty(0, np.int64), np.empty(0, np.int64))
        assert (coll.coded_bytes, len(coll), coll.total_entries) == before

    def test_validation_parity_with_sorted(self):
        coll = CompressedRRRCollection(6)
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([3, 1], np.int32))
        with pytest.raises(ValueError, match="sorted"):
            coll.append(np.array([1, 1], np.int32))
        with pytest.raises(ValueError, match="root"):
            coll.append(np.empty(0, np.int32))
        with pytest.raises(ValueError, match="range"):
            coll.append(np.array([9], np.int32))
        with pytest.raises(ValueError, match="total"):
            coll.append_batch(np.array([1], np.int64), np.array([1], np.int64), total=2)

    def test_ranking_reduces_bytes_on_skewed_data(self):
        # Vertex 500 (a 2-byte code) is in every sample; after re-ranking
        # it becomes rank 0 and costs 1 byte.
        sets = [np.sort(np.array([i, 500], np.int64)) for i in range(40)]
        coll = CompressedRRRCollection(600)
        for s in sets:
            coll.append(s)
        before = coll.coded_bytes
        coll._ensure_ranked()
        assert coll.coded_bytes < before
        assert [s.tolist() for s in coll] == [s.tolist() for s in sets]

    def test_decode_samples_subset(self):
        coll = build(SETS)
        verts, counts = coll.decode_samples(np.array([2, 0]))
        assert counts.tolist() == [2, 3]
        assert np.sort(verts[:2]).tolist() == [2, 5]
        assert np.sort(verts[2:]).tolist() == [0, 2, 5]

    def test_freeze_pins_permutation(self):
        coll = build(SETS)
        coll.freeze_permutation()
        vertex_of = coll._vertex_of.copy()
        coll.append(np.array([0, 1], np.int32))
        assert np.array_equal(coll._vertex_of, vertex_of)
        assert coll[3].tolist() == [0, 1]

    def test_adopt_permutation_rejects_non_bijection(self):
        coll = CompressedRRRCollection(4)
        with pytest.raises(ValueError, match="bijection"):
            coll.adopt_permutation(np.array([0, 1, 1, 3], np.int64))
        with pytest.raises(ValueError, match="bijection"):
            coll.adopt_permutation(np.array([0, 1, 2], np.int64))

    def test_adopt_permutation_only_when_empty(self):
        coll = build(SETS)
        with pytest.raises(ValueError, match="landed"):
            coll.adopt_permutation(np.arange(6, dtype=np.int64))

    def test_from_stream_round_trip(self):
        coll = build(SETS)
        coll.freeze_permutation()
        coded, ends, vertex_of = coll.stream()
        clone = CompressedRRRCollection.from_stream(
            6, coded.copy(), ends.copy(), vertex_of.copy(), entries=coll.total_entries
        )
        assert [s.tolist() for s in clone] == [s.tolist() for s in coll]
        assert clone.counters().tolist() == coll.counters().tolist()

    def test_memory_model_beats_flat_on_skewed_data(self):
        rng = np.random.default_rng(3)
        n = 2000
        coll = CompressedRRRCollection(n)
        flat = SortedRRRCollection(n)
        # Zipf-ish skew: hubs appear in nearly every sample.
        for _ in range(400):
            size = int(rng.integers(3, 20))
            s = np.unique((rng.zipf(1.5, size=size) - 1).clip(0, n - 1)).astype(np.int64)
            coll.append(s)
            flat.append(s.astype(np.int32))
        coll._ensure_ranked()
        # The dominant terms: coded bytes must beat 4-byte-per-entry flat.
        assert coll.coded_bytes < 4 * coll.total_entries


class TestSelectionParity:
    @pytest.mark.parametrize("num_ranks", [1, 3])
    def test_seeds_match_sorted_layout(self, ba_graph, num_ranks):
        sorted_coll = SortedRRRCollection(ba_graph.n)
        comp_coll = CompressedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", sorted_coll, 500, 17)
        sample_batch(ba_graph, "IC", comp_coll, 500, 17)
        a = select_seeds_sorted(sorted_coll, ba_graph.n, 8, num_ranks)
        b = select_seeds_compressed(comp_coll, ba_graph.n, 8, num_ranks)
        assert a.seeds.tolist() == b.seeds.tolist()
        assert a.covered_samples == b.covered_samples
        assert a.counter_updates == b.counter_updates
