"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges
from repro.imm.select import select_seeds_sorted
from repro.bio import benjamini_hochberg
from repro.parallel import block_bounds, lpt_makespan, owner_of
from repro.rng import Lcg64, SplitMix64, sample_stream
from repro.sampling import RRRSampler, SortedRRRCollection


class TestLcgProperties:
    @given(seed=st.integers(0, 2**64 - 1), size=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_leapfrog_partition_exact(self, seed, size):
        """For any seed and rank count, the leap-frog substreams tile the
        master sequence exactly — the Section 3.2 correctness condition."""
        master = Lcg64(seed)
        serial = [master.next_u64() for _ in range(size * 4)]
        streams = [Lcg64(seed).leapfrog(r, size) for r in range(size)]
        interleaved = []
        for i in range(4):
            for s in streams:
                interleaved.append(s.next_u64())
        assert interleaved == serial

    @given(seed=st.integers(0, 2**64 - 1), t=st.integers(0, 1500))
    @settings(max_examples=40, deadline=None)
    def test_jump_equals_iteration(self, seed, t):
        a, b = Lcg64(seed), Lcg64(seed)
        a.jump(t)
        for _ in range(t):
            b.next_u64()
        assert a.state == b.state
        assert a.offset == b.offset

    @given(seed=st.integers(0, 2**64 - 1), n=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_block_equals_scalar(self, seed, n):
        a, b = Lcg64(seed), Lcg64(seed)
        assert a.next_u64_block(n).tolist() == [b.next_u64() for _ in range(n)]


class TestSplitMixProperties:
    @given(seed=st.integers(0, 2**64 - 1), splits=st.lists(st.integers(0, 1000), min_size=2, max_size=6, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_distinct_keys_give_distinct_streams(self, seed, splits):
        parent = SplitMix64(seed)
        firsts = [parent.split(key).next_u64() for key in splits]
        assert len(set(firsts)) == len(firsts)

    @given(seed=st.integers(0, 2**32), j=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_sample_stream_pure(self, seed, j):
        assert sample_stream(seed, j).next_u64() == sample_stream(seed, j).next_u64()


class TestPartitionProperties:
    @given(total=st.integers(0, 10_000), p=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_bounds_tile_range(self, total, p):
        bounds = block_bounds(total, p)
        assert bounds[0] == 0 and bounds[-1] == total
        sizes = np.diff(bounds)
        assert sizes.min() >= 0
        assert sizes.max() - sizes.min() <= 1

    @given(total=st.integers(1, 5000), p=st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_owner_of_consistent_with_bounds(self, total, p):
        bounds = block_bounds(total, p)
        idx = np.arange(total)
        owners = owner_of(idx, total, p)
        for r in range(p):
            mine = idx[owners == r]
            if len(mine):
                assert mine.min() >= bounds[r]
                assert mine.max() < bounds[r + 1]


class TestLptProperties:
    @given(
        costs=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60),
        p=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_sandwich(self, costs, p):
        arr = np.asarray(costs)
        ms = lpt_makespan(arr, p)
        assert ms >= max(arr.sum() / p, arr.max()) - 1e-6 * max(arr.max(), 1)
        assert ms <= arr.sum() + 1e-6


class TestBHProperties:
    @given(
        pvals=st.lists(st.floats(1e-12, 1.0, allow_nan=False), min_size=1, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_adjusted_dominates_raw_and_stays_in_unit(self, pvals):
        p = np.asarray(pvals)
        adj = benjamini_hochberg(p)
        assert np.all(adj >= p - 1e-12)
        assert np.all(adj <= 1.0)

    @given(
        pvals=st.lists(st.floats(1e-12, 1.0, allow_nan=False), min_size=2, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_order_preserved(self, pvals):
        p = np.asarray(pvals)
        adj = benjamini_hochberg(p)
        order = np.argsort(p)
        assert np.all(np.diff(adj[order]) >= -1e-12)


def _random_graph(draw_edges, n):
    src = np.asarray([e[0] for e in draw_edges], dtype=np.int64) % n
    dst = np.asarray([e[1] for e in draw_edges], dtype=np.int64) % n
    prob = np.asarray([e[2] for e in draw_edges], dtype=np.float64)
    return from_edges(n, src, dst, prob)


class TestSamplingProperties:
    @given(
        n=st.integers(3, 25),
        edges=st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=80,
        ),
        root_pick=st.integers(0, 10**6),
        stream=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_rrr_always_contains_root_sorted_unique(
        self, n, edges, root_pick, stream
    ):
        graph = _random_graph(edges, n)
        root = root_pick % n
        verts, examined = RRRSampler(graph, "IC").generate(root, SplitMix64(stream))
        assert root in verts.tolist()
        assert np.all(np.diff(verts) > 0)
        assert examined >= 0
        assert verts.min() >= 0 and verts.max() < n

    @given(
        n=st.integers(3, 25),
        edges=st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=80,
        ),
        root_pick=st.integers(0, 10**6),
        stream=st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_lt_rrr_invariants(self, n, edges, root_pick, stream):
        graph = _random_graph(edges, n)
        root = root_pick % n
        verts, _ = RRRSampler(graph, "LT").generate(root, SplitMix64(stream))
        assert root in verts.tolist()
        assert np.all(np.diff(verts) > 0)


class TestSelectionProperties:
    @given(
        n=st.integers(2, 15),
        sets=st.lists(
            st.lists(st.integers(0, 14), min_size=1, max_size=5),
            min_size=1,
            max_size=25,
        ),
        k=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_greedy_invariants(self, n, sets, k, data):
        k = min(k, n)
        coll = SortedRRRCollection(n)
        for s in sets:
            coll.append(np.unique(np.asarray(s, np.int32) % n))
        sel = select_seeds_sorted(coll, n, k)
        # size, uniqueness, range
        assert len(sel.seeds) == k
        assert len(set(sel.seeds.tolist())) == k
        # coverage never exceeds the number of samples and equals the
        # brute recount of samples hit by the seed set
        chosen = set(sel.seeds.tolist())
        manual = sum(1 for s in coll if chosen & set(s.tolist()))
        assert sel.covered_samples == manual


class TestThresholdEquivalence:
    """The sampler's integer acceptance thresholds must replicate the
    float comparison exactly: (raw>>11)*2**-53 < p  <=>  (raw>>11) <
    ceil(p * 2**53)."""

    @given(
        p=st.floats(0.0, 1.0, allow_nan=False),
        raws=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_integer_threshold_matches_float_comparison(self, p, raws):
        raw = np.asarray(raws, dtype=np.uint64)
        thresh = np.uint64(np.ceil(p * float(1 << 53)))
        float_cmp = (raw >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53)) < p
        int_cmp = (raw >> np.uint64(11)) < thresh
        assert np.array_equal(float_cmp, int_cmp)

    def test_extreme_probabilities(self):
        from repro.graph import constant_weights, complete_graph
        from repro.sampling import RRRSampler

        never = constant_weights(complete_graph(5), 0.0)
        verts, _ = RRRSampler(never, "IC").generate(0, SplitMix64(1))
        assert verts.tolist() == [0]
        always = constant_weights(complete_graph(5), 1.0)
        verts, _ = RRRSampler(always, "IC").generate(0, SplitMix64(1))
        assert verts.tolist() == [0, 1, 2, 3, 4]
