"""Tests for the equivalence oracle and RNG laws (repro.validate)."""

import dataclasses

import pytest

from repro.datasets import load, names
from repro.validate import (
    OracleConfig,
    check_counter_streams,
    check_graph_equivalence,
    check_leapfrog_tiling,
    check_rng_laws,
    check_selection_meters,
    full_config,
    quick_config,
    run_oracle,
    validate_quick,
)


class TestRngLaws:
    def test_leapfrog_tiling_holds(self):
        rep = check_leapfrog_tiling(seed=7)
        assert rep.ok
        assert rep.checks_run > 0

    def test_counter_streams_hold(self):
        rep = check_counter_streams(seed=7)
        assert rep.ok

    def test_combined_runner(self):
        rep = check_rng_laws(seed=3)
        assert rep.ok
        # runs both laws at two seeds each
        assert rep.checks_run > check_leapfrog_tiling(seed=3).checks_run


class TestConfigs:
    def test_quick_is_subset_of_full(self):
        q, f = quick_config(), full_config()
        assert set(q.datasets) <= set(f.datasets)
        assert set(f.datasets) == set(names())
        assert q.theta_cap <= f.theta_cap

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            quick_config().theta_cap = 1


class TestSelectionMeters:
    def test_sampled_collection_conserves(self, ba_graph):
        from repro.sampling import SortedRRRCollection, sample_batch

        coll = SortedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", coll, 150, 2)
        rep = check_selection_meters(coll, ba_graph.n, 5, (1, 2, 4), "ba")
        assert rep.ok, rep.summary()


class TestOracle:
    def test_one_graph_equivalence(self):
        """The core acceptance property on the smallest registry graph,
        with reduced axes so the test stays fast."""
        cfg = OracleConfig(
            datasets=("cit-HepTh",),
            models=("IC",),
            theta_cap=200,
            cohort_sizes=(1, 7),
            rank_counts=(1, 2),
            mt_threads=(2,),
        )
        graph = load("cit-HepTh", "IC")
        rep = check_graph_equivalence(graph, "IC", cfg, "cit-HepTh/IC")
        assert rep.ok, rep.summary()
        assert rep.checks_run > 20

    def test_run_oracle_reports_progress(self):
        cfg = OracleConfig(
            datasets=("cit-HepTh",),
            models=("IC",),
            theta_cap=150,
            cohort_sizes=(1,),
            rank_counts=(1,),
            mt_threads=(1,),
            check_leapfrog=False,
        )
        lines = []
        rep = run_oracle(cfg, progress=lines.append)
        assert rep.ok, rep.summary()
        assert any("rng laws" in line for line in lines)
        assert any("cit-HepTh/IC" in line for line in lines)

    def test_validate_quick_passes(self):
        """The CI gate itself (also wired into benchmarks/regress.py)."""
        rep = validate_quick()
        assert rep.ok, rep.summary()
        assert rep.checks_run > 100
