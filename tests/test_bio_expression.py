"""Tests for the synthetic omics generator (repro.bio.expression)."""

import numpy as np
import pytest

from repro.bio import make_expression_dataset


@pytest.fixture(scope="module")
def mini():
    return make_expression_dataset(
        "tumor",
        num_response_modules=2,
        num_housekeeping_modules=2,
        module_size=5,
        response_shadows=2,
        housekeeping_shadows=3,
        num_bridge=4,
        num_noise=10,
        num_samples=30,
        seed=1,
    )


class TestMakeExpressionDataset:
    def test_shape_accounting(self, mini):
        cores = 4 * 5
        shadows = 2 * 5 * 2 + 2 * 5 * 3
        expected = cores + shadows + 4 + 10
        assert mini.num_features == expected
        assert mini.num_samples == 30
        assert mini.values.shape == (expected, 30)
        assert len(mini.feature_names) == expected
        assert len(mini.module_of) == expected

    def test_rows_z_scored(self, mini):
        means = mini.values.mean(axis=1)
        stds = mini.values.std(axis=1)
        np.testing.assert_allclose(means, 0.0, atol=1e-9)
        np.testing.assert_allclose(stds, 1.0, atol=1e-6)

    def test_module_membership(self, mini):
        for mod in range(4):
            members = mini.module_members(mod)
            assert len(members) == 5
        assert (mini.module_of == -1).sum() == 2 * 5 * 2 + 2 * 5 * 3 + 4 + 10

    def test_module_kinds(self, mini):
        assert mini.module_kind == ["response", "response", "housekeeping", "housekeeping"]

    def test_deterministic(self):
        a = make_expression_dataset("tumor", num_noise=5, seed=3)
        b = make_expression_dataset("tumor", num_noise=5, seed=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_seed_changes_data(self):
        a = make_expression_dataset("tumor", num_noise=5, seed=3)
        b = make_expression_dataset("tumor", num_noise=5, seed=4)
        assert not np.array_equal(a.values, b.values)

    def test_core_shadow_correlation_exceeds_core_core(self, mini):
        """The influence asymmetry the case study depends on: a response
        core correlates with its shadows more than with module peers."""
        # Response module 0 cores are features 0..4; its shadows start at
        # the shadow block in order (2 per core).
        core = mini.values[0]
        shadow_block_start = 20
        shadow0 = mini.values[shadow_block_start]
        peer = mini.values[1]
        corr = lambda a, b: abs(float(np.corrcoef(a, b)[0, 1]))  # noqa: E731
        assert corr(core, shadow0) > corr(core, peer)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_expression_dataset(module_size=1)
        with pytest.raises(ValueError):
            make_expression_dataset(num_samples=2)
        with pytest.raises(ValueError):
            make_expression_dataset(cascade_strength=1.0)
        with pytest.raises(ValueError):
            make_expression_dataset(response_shadows=-1)

    def test_soil_naming(self):
        soil = make_expression_dataset("soil", num_noise=3, seed=1)
        assert any(name.startswith("M") for name in soil.feature_names)
        tumor = make_expression_dataset("tumor", num_noise=3, seed=1)
        assert any(name.startswith("P") for name in tumor.feature_names)
