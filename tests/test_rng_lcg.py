"""Tests for the leap-frog LCG (repro.rng.lcg)."""

import numpy as np
import pytest

from repro.rng import LCG64_DEFAULT_A, LCG64_DEFAULT_C, Lcg64, lcg_affine_power

M64 = (1 << 64) - 1


class TestAffinePower:
    def test_zero_is_identity(self):
        assert lcg_affine_power(LCG64_DEFAULT_A, LCG64_DEFAULT_C, 0) == (1, 0)

    def test_one_is_the_map_itself(self):
        a, c = lcg_affine_power(LCG64_DEFAULT_A, LCG64_DEFAULT_C, 1)
        assert (a, c) == (LCG64_DEFAULT_A, LCG64_DEFAULT_C)

    def test_matches_iterated_application(self):
        a, c = LCG64_DEFAULT_A, LCG64_DEFAULT_C
        x = 12345
        for t in (2, 3, 7, 10, 63):
            A, C = lcg_affine_power(a, c, t)
            expected = x
            for _ in range(t):
                expected = (a * expected + c) & M64
            assert (A * x + C) & M64 == expected

    def test_composition_property(self):
        # power(s) ∘ power(t) == power(s + t)
        a, c = LCG64_DEFAULT_A, LCG64_DEFAULT_C
        A5, C5 = lcg_affine_power(a, c, 5)
        A3, C3 = lcg_affine_power(a, c, 3)
        A8, C8 = lcg_affine_power(a, c, 8)
        assert (A5 * A3) & M64 == A8
        assert (A5 * C3 + C5) & M64 == C8

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            lcg_affine_power(LCG64_DEFAULT_A, LCG64_DEFAULT_C, -1)


class TestLcg64Scalar:
    def test_deterministic(self):
        assert [Lcg64(42).next_u64() for _ in range(3)] == [
            Lcg64(42).next_u64() for _ in range(3)
        ]

    def test_distinct_seeds_distinct_streams(self):
        a = [Lcg64(1).next_u64() for _ in range(8)]
        b = [Lcg64(2).next_u64() for _ in range(8)]
        assert a != b

    def test_random_in_unit_interval(self):
        gen = Lcg64(3)
        values = [gen.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < float(np.mean(values)) < 0.6

    def test_randint_range_and_coverage(self):
        gen = Lcg64(4)
        draws = {gen.randint(3, 7) for _ in range(200)}
        assert draws == {3, 4, 5, 6}

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).randint(5, 5)

    def test_jump_equals_discarding(self):
        gen1, gen2 = Lcg64(9), Lcg64(9)
        for _ in range(1000):
            gen1.next_u64()
        gen2.jump(1000)
        assert gen1.next_u64() == gen2.next_u64()
        assert gen1.offset == gen2.offset

    def test_jump_backwards_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).jump(-1)

    def test_clone_is_independent(self):
        gen = Lcg64(11)
        gen.next_u64()
        twin = gen.clone()
        assert gen.next_u64() == twin.next_u64()
        gen.next_u64()
        assert gen.state != twin.state


class TestLcg64Blocks:
    def test_block_matches_scalar(self):
        scalar = Lcg64(21)
        block = Lcg64(21)
        expected = [scalar.next_u64() for _ in range(100)]
        got = block.next_u64_block(100)
        assert got.tolist() == expected

    def test_block_advances_state(self):
        gen1, gen2 = Lcg64(5), Lcg64(5)
        gen1.next_u64_block(37)
        gen2.jump(37)
        assert gen1.next_u64() == gen2.next_u64()

    def test_empty_block(self):
        gen = Lcg64(5)
        state = gen.state
        assert len(gen.next_u64_block(0)) == 0
        assert gen.state == state

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).next_u64_block(-1)

    def test_random_block_range(self):
        values = Lcg64(6).random_block(500)
        assert values.min() >= 0.0
        assert values.max() < 1.0

    def test_random_block_matches_scalar(self):
        a = Lcg64(7)
        b = Lcg64(7)
        got = a.random_block(20)
        expected = [b.random() for _ in range(20)]
        np.testing.assert_allclose(got, expected)

    def test_randint_block_range(self):
        values = Lcg64(8).randint_block(10, 20, 300)
        assert values.min() >= 10
        assert values.max() < 20

    def test_randint_block_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).randint_block(2, 2, 5)


class TestLeapfrog:
    """The core Section 3.2 guarantee: substreams partition the master."""

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 16])
    def test_interleaving_reconstructs_serial_stream(self, size):
        master = Lcg64(99)
        serial = [master.next_u64() for _ in range(size * 20)]
        streams = [Lcg64(99).leapfrog(r, size) for r in range(size)]
        reconstructed = []
        for i in range(20):
            for r in range(size):
                reconstructed.append(streams[r].next_u64())
        assert reconstructed == serial

    def test_offsets_and_strides(self):
        child = Lcg64(1).leapfrog(2, 5)
        assert child.offset == 2
        assert child.stride == 5
        child.next_u64()
        assert child.offset == 7

    def test_nested_leapfrog(self):
        # Splitting a substream again references the substream's sequence.
        master = Lcg64(123)
        serial = [master.next_u64() for _ in range(24)]
        # substream 1 of 2 holds elements 1, 3, 5, ...
        sub = Lcg64(123).leapfrog(1, 2)
        # its substream 0 of 3 holds elements 1, 7, 13, 19 of the master
        subsub = sub.leapfrog(0, 3)
        got = [subsub.next_u64() for _ in range(4)]
        assert got == [serial[1], serial[7], serial[13], serial[19]]
        assert subsub.stride == 6

    def test_block_generation_in_substream(self):
        serial = Lcg64(55)
        expected = [serial.next_u64() for _ in range(30)]
        sub = Lcg64(55).leapfrog(1, 3)
        got = sub.next_u64_block(10)
        assert got.tolist() == expected[1::3]

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).leapfrog(3, 3)
        with pytest.raises(ValueError):
            Lcg64(0).leapfrog(-1, 3)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Lcg64(0).leapfrog(0, 0)
