"""Tests for the synthetic graph generators (repro.graph.generators)."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    graph_stats,
    path_graph,
    rmat,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        n, p = 200, 0.02
        g = erdos_renyi(n, p, seed=1)
        expected = n * (n - 1) * p
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_deterministic_in_seed(self):
        assert erdos_renyi(50, 0.1, seed=3) == erdos_renyi(50, 0.1, seed=3)
        assert erdos_renyi(50, 0.1, seed=3) != erdos_renyi(50, 0.1, seed=4)

    def test_p_zero_and_empty(self):
        assert erdos_renyi(10, 0.0).m == 0
        assert erdos_renyi(0, 0.5).n == 0

    def test_no_self_loops(self):
        g = erdos_renyi(40, 0.2, seed=2)
        assert all(u != v for u, v, _ in g.edges())

    def test_undirected_mode_symmetric(self):
        g = erdos_renyi(30, 0.1, seed=5, directed=False)
        for u, v, _ in g.edges():
            assert g.has_edge(v, u)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)
        with pytest.raises(ValueError):
            erdos_renyi(-1, 0.5)


class TestBarabasiAlbert:
    def test_heavy_tail(self):
        g = barabasi_albert(500, 3, seed=1)
        stats = graph_stats(g)
        # preferential attachment: max degree far above average
        assert stats.degree_skew > 5

    def test_size(self):
        g = barabasi_albert(200, 2, seed=1)
        assert g.n == 200
        assert g.m <= 2 * 2 * 200
        assert g.m > 200

    def test_symmetric_when_directed(self):
        g = barabasi_albert(100, 2, seed=2)
        for u, v, _ in g.edges():
            assert g.has_edge(v, u)

    def test_deterministic(self):
        assert barabasi_albert(80, 3, seed=9) == barabasi_albert(80, 3, seed=9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestRmat:
    def test_size_bounds(self):
        g = rmat(8, 4, seed=1)
        assert g.n == 256
        assert g.m <= 4 * 256  # dedup/self-loop removal only shrinks

    def test_skewed_degrees(self):
        g = rmat(10, 8, seed=2)
        assert graph_stats(g).degree_skew > 4

    def test_deterministic(self):
        assert rmat(6, 3, seed=7) == rmat(6, 3, seed=7)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rmat(0, 4)
        with pytest.raises(ValueError):
            rmat(5, 2, a=0.9, b=0.9, c=0.9)


class TestWattsStrogatz:
    def test_flat_degrees_at_zero_beta(self):
        g = watts_strogatz(100, 3, 0.0, seed=1)
        deg = g.out_degree()
        # ring lattice: every vertex has exactly 2 * k_ring out-edges
        assert deg.min() == deg.max() == 6

    def test_rewiring_perturbs(self):
        g0 = watts_strogatz(100, 3, 0.0, seed=1)
        g1 = watts_strogatz(100, 3, 0.9, seed=1)
        assert g0 != g1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 0, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 1.5)


class TestSBM:
    def test_block_density_contrast(self):
        sizes = [40, 40]
        g = stochastic_block_model(sizes, 0.3, 0.01, seed=1)
        within = between = 0
        for u, v, _ in g.edges():
            if (u < 40) == (v < 40):
                within += 1
            else:
                between += 1
        assert within > 5 * between

    def test_empty_probability(self):
        g = stochastic_block_model([10, 10], 0.0, 0.0, seed=1)
        assert g.m == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            stochastic_block_model([], 0.5, 0.1)
        with pytest.raises(ValueError):
            stochastic_block_model([5], 1.5, 0.1)


class TestFixtures:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.m == 20
        assert all(g.has_edge(u, v) for u in range(5) for v in range(5) if u != v)

    def test_path_graph(self):
        g = path_graph(4)
        assert g.m == 3
        assert g.has_edge(0, 1) and g.has_edge(2, 3)
        assert not g.has_edge(1, 0)

    def test_star_graph(self):
        g = star_graph(6)
        assert g.out_degree(0) == 5
        assert g.in_degree(0) == 0
        with pytest.raises(ValueError):
            star_graph(0)
