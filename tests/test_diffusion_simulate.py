"""Tests for the Monte-Carlo spread estimator (repro.diffusion.simulate)."""

import numpy as np
import pytest

from repro.diffusion import DiffusionModel, estimate_spread, run_trial
from repro.graph import constant_weights, from_edge_list, path_graph
from repro.rng import SplitMix64


class TestDiffusionModelParse:
    def test_accepts_enum_and_strings(self):
        assert DiffusionModel.parse("ic") is DiffusionModel.IC
        assert DiffusionModel.parse("LT") is DiffusionModel.LT
        assert DiffusionModel.parse(DiffusionModel.IC) is DiffusionModel.IC

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown diffusion model"):
            DiffusionModel.parse("SIR")


class TestRunTrial:
    def test_dispatches_ic(self, tiny_graph):
        out = run_trial(tiny_graph, np.array([0]), "IC", SplitMix64(1))
        assert 0 in out.tolist()

    def test_dispatches_lt(self, tiny_graph):
        out = run_trial(tiny_graph, np.array([0]), "LT", SplitMix64(1))
        assert 0 in out.tolist()


class TestEstimateSpread:
    def test_analytic_two_vertex(self):
        # E[spread of {0}] on a single p=0.4 edge is 1 + 0.4.
        g = from_edge_list(2, [(0, 1, 0.4)])
        est = estimate_spread(g, np.array([0]), "IC", trials=4000, seed=1)
        assert est.mean == pytest.approx(1.4, abs=0.05)

    def test_deterministic_in_seed(self, ba_graph):
        a = estimate_spread(ba_graph, np.array([0]), "IC", trials=50, seed=2)
        b = estimate_spread(ba_graph, np.array([0]), "IC", trials=50, seed=2)
        assert a.mean == b.mean
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_deterministic_cascade_zero_variance(self):
        g = constant_weights(path_graph(4), 1.0)
        est = estimate_spread(g, np.array([0]), "IC", trials=30, seed=0)
        assert est.mean == 4.0
        assert est.std == 0.0

    def test_stderr_shrinks_with_trials(self, ba_graph):
        small = estimate_spread(ba_graph, np.array([3]), "IC", trials=50, seed=1)
        large = estimate_spread(ba_graph, np.array([3]), "IC", trials=800, seed=1)
        assert large.stderr < small.stderr

    def test_samples_recorded(self, ba_graph):
        est = estimate_spread(ba_graph, np.array([0]), "IC", trials=25, seed=4)
        assert est.trials == 25
        assert len(est.samples) == 25
        assert est.samples.min() >= 1  # seed itself always counted

    def test_single_trial_has_nan_stderr(self, tiny_graph):
        est = estimate_spread(tiny_graph, np.array([0]), "IC", trials=1, seed=0)
        assert np.isnan(est.stderr)

    def test_zero_trials_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            estimate_spread(tiny_graph, np.array([0]), "IC", trials=0)

    def test_more_seeds_more_spread(self, ba_graph):
        one = estimate_spread(ba_graph, np.array([0]), "IC", trials=200, seed=3)
        many = estimate_spread(
            ba_graph, np.array([0, 1, 2, 3, 4]), "IC", trials=200, seed=3
        )
        assert many.mean > one.mean
