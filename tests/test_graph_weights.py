"""Tests for the edge-probability schemes (repro.graph.weights)."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    constant_weights,
    erdos_renyi,
    lt_normalize,
    uniform_random_weights,
    weighted_cascade,
)


@pytest.fixture(scope="module")
def topo():
    return erdos_renyi(80, 0.08, seed=3)


def _directions_consistent(g):
    forward = {(u, v): p for u, v, p in g.edges()}
    for v in range(g.n):
        for u, p in zip(g.in_neighbors(v).tolist(), g.in_edge_probs(v).tolist()):
            if forward[(u, v)] != p:
                return False
    return True


class TestUniformRandom:
    def test_range_full_scale(self, topo):
        g = uniform_random_weights(topo, seed=1)
        assert g.out_probs.min() >= 0.0
        assert g.out_probs.max() < 1.0
        assert g.out_probs.std() > 0.1  # actually spread out

    def test_scale_shrinks_range(self, topo):
        g = uniform_random_weights(topo, seed=1, scale=0.2)
        assert g.out_probs.max() < 0.2

    def test_deterministic_in_seed(self, topo):
        a = uniform_random_weights(topo, seed=1)
        b = uniform_random_weights(topo, seed=1)
        np.testing.assert_array_equal(a.out_probs, b.out_probs)
        c = uniform_random_weights(topo, seed=2)
        assert not np.array_equal(a.out_probs, c.out_probs)

    def test_directions_consistent(self, topo):
        assert _directions_consistent(uniform_random_weights(topo, seed=4))

    def test_invalid_scale(self, topo):
        with pytest.raises(ValueError):
            uniform_random_weights(topo, scale=0.0)
        with pytest.raises(ValueError):
            uniform_random_weights(topo, scale=1.5)


class TestConstant:
    def test_all_equal(self, topo):
        g = constant_weights(topo, 0.07)
        assert set(g.out_probs.tolist()) == {0.07}
        assert _directions_consistent(g)

    def test_invalid(self, topo):
        with pytest.raises(ValueError):
            constant_weights(topo, -0.1)


class TestWeightedCascade:
    def test_in_weights_sum_to_one(self, topo):
        g = weighted_cascade(topo)
        for v in range(g.n):
            s = g.in_edge_probs(v).sum()
            if g.in_degree(v) > 0:
                assert s == pytest.approx(1.0)

    def test_directions_consistent(self, topo):
        assert _directions_consistent(weighted_cascade(topo))

    def test_already_lt_valid(self, topo):
        g = weighted_cascade(topo)
        g2 = lt_normalize(g)
        np.testing.assert_allclose(g.in_probs, g2.in_probs)


class TestLTNormalize:
    def test_in_weight_sums_at_most_one(self):
        topo = barabasi_albert(150, 4, seed=2)
        g = lt_normalize(uniform_random_weights(topo, seed=5))
        for v in range(g.n):
            assert g.in_edge_probs(v).sum() <= 1.0 + 1e-9

    def test_small_sums_untouched(self, topo):
        g = constant_weights(topo, 0.001)
        g2 = lt_normalize(g)
        np.testing.assert_allclose(g.in_probs, g2.in_probs)

    def test_relative_weights_preserved(self):
        topo = barabasi_albert(100, 3, seed=4)
        g = uniform_random_weights(topo, seed=6)
        g2 = lt_normalize(g)
        # within each vertex, the ratio structure of in-weights survives
        for v in range(g2.n):
            orig = g.in_edge_probs(v)
            norm = g2.in_edge_probs(v)
            if len(orig) >= 2 and orig.sum() > 1.0 and orig.min() > 0:
                np.testing.assert_allclose(
                    norm / norm.sum(), orig / orig.sum(), rtol=1e-12
                )

    def test_directions_consistent(self):
        topo = barabasi_albert(100, 3, seed=4)
        g = lt_normalize(uniform_random_weights(topo, seed=6))
        assert _directions_consistent(g)
