"""Shared fixtures: small deterministic graphs used across the suite.

Also hosts the ``parallel`` marker's watchdog: process-pool tests can
hang (a dead worker whose future is never resolved), and pytest-timeout
is not available in this environment, so a SIGALRM-based guard fails any
``@pytest.mark.parallel`` test that exceeds its budget instead of
wedging the whole suite.
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    from_edge_list,
    lt_normalize,
    path_graph,
    star_graph,
    uniform_random_weights,
)


PARALLEL_TEST_TIMEOUT = 120  # seconds; generous — pool spin-up dominates


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Per-test timeout for ``parallel``-marked tests (SIGALRM based).

    SIGALRM only exists on the main thread of POSIX platforms, which is
    exactly where pytest runs test bodies; a non-POSIX platform simply
    skips the guard.
    """
    marker = item.get_closest_marker("parallel")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    budget = int(marker.kwargs.get("timeout", PARALLEL_TEST_TIMEOUT))

    def _alarm(signum, frame):
        raise TimeoutError(
            f"parallel test exceeded its {budget}s watchdog budget "
            "(likely a hung pool worker)"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(budget)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def ba_graph():
    """A small heavy-tailed digraph with uniform random IC weights."""
    return uniform_random_weights(barabasi_albert(300, 3, seed=7), seed=3, scale=0.3)


@pytest.fixture(scope="session")
def ba_graph_lt(ba_graph):
    """The LT-normalized version of :func:`ba_graph`."""
    return lt_normalize(ba_graph)


@pytest.fixture(scope="session")
def er_graph():
    """A sparse Erdős–Rényi digraph with constant weights."""
    from repro.graph import constant_weights

    return constant_weights(erdos_renyi(150, 0.03, seed=5), 0.2)


@pytest.fixture()
def tiny_graph():
    """A 5-vertex hand-built graph with known structure.

    Edges (prob): 0->1 (1.0), 0->2 (1.0), 1->3 (1.0), 2->3 (0.0), 3->4 (1.0)
    """
    return from_edge_list(
        5,
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 0.0), (3, 4, 1.0)],
    )


@pytest.fixture()
def path5():
    """Directed path over 5 vertices, default probabilities."""
    return path_graph(5)


@pytest.fixture()
def star10():
    """Star with hub 0 and 9 spokes."""
    return star_graph(10)


@pytest.fixture()
def k4():
    """Complete digraph on 4 vertices."""
    return complete_graph(4)


def assert_valid_seed_set(seeds: np.ndarray, n: int, k: int) -> None:
    """Common assertions on a seed set: size, range, uniqueness."""
    assert len(seeds) == k
    assert len(np.unique(seeds)) == k
    assert seeds.min() >= 0
    assert seeds.max() < n
