"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    from_edge_list,
    lt_normalize,
    path_graph,
    star_graph,
    uniform_random_weights,
)


@pytest.fixture(scope="session")
def ba_graph():
    """A small heavy-tailed digraph with uniform random IC weights."""
    return uniform_random_weights(barabasi_albert(300, 3, seed=7), seed=3, scale=0.3)


@pytest.fixture(scope="session")
def ba_graph_lt(ba_graph):
    """The LT-normalized version of :func:`ba_graph`."""
    return lt_normalize(ba_graph)


@pytest.fixture(scope="session")
def er_graph():
    """A sparse Erdős–Rényi digraph with constant weights."""
    from repro.graph import constant_weights

    return constant_weights(erdos_renyi(150, 0.03, seed=5), 0.2)


@pytest.fixture()
def tiny_graph():
    """A 5-vertex hand-built graph with known structure.

    Edges (prob): 0->1 (1.0), 0->2 (1.0), 1->3 (1.0), 2->3 (0.0), 3->4 (1.0)
    """
    return from_edge_list(
        5,
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 0.0), (3, 4, 1.0)],
    )


@pytest.fixture()
def path5():
    """Directed path over 5 vertices, default probabilities."""
    return path_graph(5)


@pytest.fixture()
def star10():
    """Star with hub 0 and 9 spokes."""
    return star_graph(10)


@pytest.fixture()
def k4():
    """Complete digraph on 4 vertices."""
    return complete_graph(4)


def assert_valid_seed_set(seeds: np.ndarray, n: int, k: int) -> None:
    """Common assertions on a seed set: size, range, uniqueness."""
    assert len(seeds) == k
    assert len(np.unique(seeds)) == k
    assert seeds.min() >= 0
    assert seeds.max() < n
