"""End-to-end tests for the serial IMM driver (repro.imm.imm)."""

import numpy as np
import pytest

from repro.diffusion import estimate_spread
from repro.imm import imm

from conftest import assert_valid_seed_set


class TestIMMDriver:
    def test_basic_run(self, ba_graph):
        res = imm(ba_graph, k=10, eps=0.5, seed=1)
        assert_valid_seed_set(res.seeds, ba_graph.n, 10)
        assert res.theta > 0
        assert res.num_samples >= res.theta or res.num_samples > 0
        assert 0.0 <= res.coverage <= 1.0
        assert res.total_time > 0

    def test_deterministic(self, ba_graph):
        a = imm(ba_graph, k=8, eps=0.5, seed=4)
        b = imm(ba_graph, k=8, eps=0.5, seed=4)
        np.testing.assert_array_equal(a.seeds, b.seeds)
        assert a.theta == b.theta

    def test_layouts_agree_on_seeds(self, ba_graph):
        """Table 2's two rows must compute the same answer."""
        a = imm(ba_graph, k=8, eps=0.5, seed=4, layout="sorted")
        b = imm(ba_graph, k=8, eps=0.5, seed=4, layout="hypergraph")
        np.testing.assert_array_equal(a.seeds, b.seeds)
        assert a.theta == b.theta
        assert a.coverage == b.coverage
        assert b.memory_bytes > a.memory_bytes

    def test_lt_model(self, ba_graph_lt):
        res = imm(ba_graph_lt, k=5, eps=0.5, model="LT", seed=2)
        assert_valid_seed_set(res.seeds, ba_graph_lt.n, 5)
        assert res.model == "LT"

    def test_seeds_beat_random_seeds(self, ba_graph):
        """The point of the whole exercise: IMM seeds spread more than
        random ones."""
        res = imm(ba_graph, k=10, eps=0.5, seed=1)
        rng = np.random.default_rng(0)
        random_spreads = []
        for _ in range(5):
            random_seeds = rng.choice(ba_graph.n, size=10, replace=False)
            random_spreads.append(
                estimate_spread(ba_graph, random_seeds, "IC", trials=150, seed=9).mean
            )
        imm_spread = estimate_spread(ba_graph, res.seeds, "IC", trials=150, seed=9).mean
        assert imm_spread > max(random_spreads)

    def test_phase_breakdown_accounts_time(self, ba_graph):
        res = imm(ba_graph, k=5, eps=0.5, seed=1)
        b = res.breakdown
        assert b.estimate_theta > 0
        assert b.select_seeds > 0
        assert b.total == pytest.approx(
            b.estimate_theta + b.sample + b.select_seeds + b.other
        )

    def test_theta_cap(self, ba_graph):
        res = imm(ba_graph, k=10, eps=0.3, seed=1, theta_cap=40)
        assert res.num_samples <= 40
        assert res.extra["theta_capped"]

    def test_counters_populated(self, ba_graph):
        res = imm(ba_graph, k=5, eps=0.5, seed=1)
        c = res.counters
        assert c.edges_examined > 0
        assert c.samples_generated == res.num_samples
        assert c.entries_scanned > 0

    def test_result_helpers(self, ba_graph):
        res = imm(ba_graph, k=5, eps=0.5, seed=1)
        assert "IMM[sorted,IC]" in res.summary()
        assert res.expected_spread_estimate(ba_graph.n) == pytest.approx(
            res.coverage * ba_graph.n
        )

    def test_unknown_layout_rejected(self, ba_graph):
        with pytest.raises(ValueError, match="layout"):
            imm(ba_graph, k=5, eps=0.5, layout="funky")

    def test_invalid_model_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            imm(ba_graph, k=5, eps=0.5, model="SIR")

    def test_coverage_estimates_spread(self, ba_graph):
        """F_R(S)·n is an (approximately) unbiased spread estimator
        (Section 3.1); check it lands near the MC estimate."""
        res = imm(ba_graph, k=10, eps=0.4, seed=2)
        mc = estimate_spread(ba_graph, res.seeds, "IC", trials=400, seed=5).mean
        rr_estimate = res.coverage * ba_graph.n
        assert rr_estimate == pytest.approx(mc, rel=0.25)
