"""Tests for SNAP-style edge-list I/O (repro.graph.io)."""

import io

import pytest

from repro.graph import from_edge_list, read_edgelist, write_edgelist


class TestRead:
    def test_basic_two_column(self):
        g = read_edgelist(io.StringIO("0 1\n1 2\n"))
        assert g.n == 3 and g.m == 2

    def test_comments_and_blanks_skipped(self):
        text = "# SNAP header\n% another comment\n\n0\t1\n"
        g = read_edgelist(io.StringIO(text))
        assert g.m == 1

    def test_three_column_probabilities(self):
        g = read_edgelist(io.StringIO("0 1 0.75\n"))
        assert g.out_edge_probs(0).tolist() == [0.75]

    def test_default_prob_applied(self):
        g = read_edgelist(io.StringIO("0 1\n"), default_prob=0.3)
        assert g.out_edge_probs(0).tolist() == [0.3]

    def test_renumber_sparse_ids(self):
        g = read_edgelist(io.StringIO("100 900\n900 5000\n"))
        assert g.n == 3
        assert g.m == 2

    def test_no_renumber_uses_raw_ids(self):
        g = read_edgelist(io.StringIO("0 5\n"), renumber=False)
        assert g.n == 6

    def test_malformed_column_count(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edgelist(io.StringIO("0 1 2 3\n"))

    def test_non_numeric_field(self):
        with pytest.raises(ValueError, match="non-numeric"):
            read_edgelist(io.StringIO("a b\n"))

    def test_file_path_round_trip(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# test\n0 1\n1 2\n2 0\n")
        g = read_edgelist(path)
        assert g.m == 3


class TestWrite:
    def test_round_trip_topology(self, tmp_path):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        path = tmp_path / "out.txt"
        write_edgelist(g, path)
        g2 = read_edgelist(path)
        assert g2 == g.with_probs(g2.out_probs, g2.in_probs)  # same topology
        assert sorted((u, v) for u, v, _ in g2.edges()) == sorted(
            (u, v) for u, v, _ in g.edges()
        )

    def test_round_trip_with_probs(self, tmp_path):
        g = from_edge_list(3, [(0, 1, 0.25), (1, 2, 0.75)])
        path = tmp_path / "out.txt"
        write_edgelist(g, path, with_probs=True)
        g2 = read_edgelist(path)
        probs = {(u, v): p for u, v, p in g2.edges()}
        assert probs[(0, 1)] == 0.25
        assert probs[(1, 2)] == 0.75

    def test_write_to_stream(self):
        g = from_edge_list(2, [(0, 1)])
        buf = io.StringIO()
        write_edgelist(g, buf)
        assert "0\t1" in buf.getvalue()
        assert buf.getvalue().startswith("#")
