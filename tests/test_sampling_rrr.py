"""Tests for the GenerateRR kernel (repro.sampling.rrr)."""

import numpy as np
import pytest

from repro.graph import complete_graph, constant_weights, from_edge_list, path_graph
from repro.rng import SplitMix64
from repro.sampling import RRRSampler, generate_rr


def reverse_reachable(graph, v):
    """Plain BFS over in-edges: the deterministic RR set when p = 1."""
    seen = {v}
    frontier = [v]
    while frontier:
        nxt = []
        for u in frontier:
            for w in graph.in_neighbors(u).tolist():
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return sorted(seen)


class TestGenerateRRIC:
    def test_root_always_included(self, ba_graph):
        sampler = RRRSampler(ba_graph, "IC")
        for root in (0, 5, 100):
            verts, _ = sampler.generate(root, SplitMix64(root))
            assert root in verts.tolist()

    def test_sorted_and_unique(self, ba_graph):
        sampler = RRRSampler(ba_graph, "IC")
        verts, _ = sampler.generate(3, SplitMix64(1))
        assert np.all(np.diff(verts) > 0)

    def test_probability_one_equals_reverse_bfs(self):
        g = constant_weights(path_graph(8), 1.0)
        verts, _ = generate_rr(g, 5, "IC", SplitMix64(0))
        assert verts.tolist() == reverse_reachable(g, 5)

    def test_probability_zero_is_singleton(self):
        g = constant_weights(complete_graph(6), 0.0)
        verts, edges = generate_rr(g, 2, "IC", SplitMix64(0))
        assert verts.tolist() == [2]
        assert edges == 5  # all in-edges examined, none traversed

    def test_deterministic_per_stream(self, ba_graph):
        a, _ = generate_rr(ba_graph, 7, "IC", SplitMix64(9))
        b, _ = generate_rr(ba_graph, 7, "IC", SplitMix64(9))
        np.testing.assert_array_equal(a, b)

    def test_edges_examined_counted(self):
        g = constant_weights(path_graph(4), 1.0)
        # Reverse from 3: examines the single in-edge of 3, 2, 1, 0 -> 3 edges
        _, edges = generate_rr(g, 3, "IC", SplitMix64(0))
        assert edges == 3

    def test_scratch_reuse_is_clean(self, ba_graph):
        # Consecutive generations through one sampler must match fresh
        # samplers (the epoch trick must not leak marks across samples).
        shared = RRRSampler(ba_graph, "IC")
        for i in range(10):
            a, _ = shared.generate(i, SplitMix64(i))
            b, _ = RRRSampler(ba_graph, "IC").generate(i, SplitMix64(i))
            np.testing.assert_array_equal(a, b)

    def test_root_out_of_range_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            RRRSampler(ba_graph, "IC").generate(ba_graph.n, SplitMix64(0))
        with pytest.raises(ValueError):
            RRRSampler(ba_graph, "IC").generate(-1, SplitMix64(0))

    def test_membership_frequency_tracks_influence(self):
        # On edge u -> v with probability p, u appears in RRR(v) with
        # frequency p (Definition 3).
        g = from_edge_list(2, [(0, 1, 0.35)])
        hits = 0
        sampler = RRRSampler(g, "IC")
        for i in range(3000):
            verts, _ = sampler.generate(1, SplitMix64(i))
            hits += 0 in verts.tolist()
        assert 0.31 < hits / 3000 < 0.39


class TestGenerateRRLT:
    def test_root_always_included(self, ba_graph_lt):
        verts, _ = generate_rr(ba_graph_lt, 4, "LT", SplitMix64(2))
        assert 4 in verts.tolist()

    def test_walk_shape_bounded_by_path_property(self, ba_graph_lt):
        # LT reverse sampling follows at most one in-edge per vertex, so
        # the set size is at most the number of steps + 1, and each
        # visited vertex (except the root) was reached by a single pick.
        sampler = RRRSampler(ba_graph_lt, "LT")
        for i in range(20):
            verts, edges = sampler.generate(i, SplitMix64(i))
            assert len(verts) >= 1

    def test_sizes_much_smaller_than_ic(self, ba_graph, ba_graph_lt):
        ic = RRRSampler(ba_graph, "IC")
        lt = RRRSampler(ba_graph_lt, "LT")
        ic_sizes = [len(ic.generate(i % 300, SplitMix64(i))[0]) for i in range(200)]
        lt_sizes = [len(lt.generate(i % 300, SplitMix64(i))[0]) for i in range(200)]
        assert np.mean(lt_sizes) < np.mean(ic_sizes)

    def test_no_incoming_edges_singleton(self):
        g = path_graph(3)  # vertex 0 has no in-edges
        verts, edges = generate_rr(g, 0, "LT", SplitMix64(1))
        assert verts.tolist() == [0]
        assert edges == 0

    def test_pick_probability_matches_weight(self):
        # Single in-edge with weight w: it is live with probability w.
        g = from_edge_list(2, [(0, 1, 0.25)])
        hits = 0
        sampler = RRRSampler(g, "LT")
        for i in range(3000):
            verts, _ = sampler.generate(1, SplitMix64(i))
            hits += 0 in verts.tolist()
        assert 0.21 < hits / 3000 < 0.29

    def test_walk_stops_at_revisit(self):
        # 2-cycle with weight 1: the walk 0 <- 1 <- 0 must terminate.
        g = from_edge_list(2, [(0, 1, 1.0), (1, 0, 1.0)])
        verts, _ = generate_rr(g, 0, "LT", SplitMix64(3))
        assert verts.tolist() == [0, 1]
