"""Tests for forward Independent Cascade simulation (repro.diffusion.ic)."""

import numpy as np
import pytest

from repro.diffusion import ic_trial
from repro.graph import complete_graph, constant_weights, from_edge_list, path_graph
from repro.rng import SplitMix64


class TestICTrial:
    def test_seeds_always_active(self, tiny_graph):
        out = ic_trial(tiny_graph, np.array([4]), SplitMix64(0))
        assert 4 in out.tolist()

    def test_probability_one_reaches_closure(self):
        g = constant_weights(path_graph(6), 1.0)
        out = ic_trial(g, np.array([0]), SplitMix64(1))
        assert out.tolist() == [0, 1, 2, 3, 4, 5]

    def test_probability_zero_stays_at_seeds(self):
        g = constant_weights(complete_graph(5), 0.0)
        out = ic_trial(g, np.array([2, 3]), SplitMix64(1))
        assert out.tolist() == [2, 3]

    def test_zero_prob_edge_blocks(self, tiny_graph):
        # 2 -> 3 has probability 0; the only path 0->1->3 has prob 1.
        out = ic_trial(tiny_graph, np.array([2]), SplitMix64(5))
        assert out.tolist() == [2]

    def test_deterministic_per_stream(self, ba_graph):
        a = ic_trial(ba_graph, np.array([0]), SplitMix64(7))
        b = ic_trial(ba_graph, np.array([0]), SplitMix64(7))
        np.testing.assert_array_equal(a, b)

    def test_result_sorted_unique(self, ba_graph):
        out = ic_trial(ba_graph, np.array([0, 0, 5]), SplitMix64(3))
        assert np.all(np.diff(out) > 0)

    def test_monotone_in_probability(self):
        # Same topology, higher probability => stochastically larger
        # spread; compare means over many trials.
        topo = path_graph(30)
        low = constant_weights(topo, 0.2)
        high = constant_weights(topo, 0.9)
        mean_low = np.mean(
            [len(ic_trial(low, np.array([0]), SplitMix64(i))) for i in range(200)]
        )
        mean_high = np.mean(
            [len(ic_trial(high, np.array([0]), SplitMix64(i))) for i in range(200)]
        )
        assert mean_high > mean_low + 2

    def test_out_of_range_seed_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            ic_trial(tiny_graph, np.array([99]), SplitMix64(0))
        with pytest.raises(ValueError):
            ic_trial(tiny_graph, np.array([-1]), SplitMix64(0))

    def test_empty_seed_set(self, tiny_graph):
        out = ic_trial(tiny_graph, np.empty(0, np.int64), SplitMix64(0))
        assert len(out) == 0

    def test_one_shot_semantics(self):
        # A vertex with a single p=0.5 out-edge: the expected activation
        # frequency over trials is ~0.5, not higher (each edge tried once).
        g = from_edge_list(2, [(0, 1, 0.5)])
        hits = sum(
            1 in ic_trial(g, np.array([0]), SplitMix64(i)).tolist()
            for i in range(2000)
        )
        assert 0.45 < hits / 2000 < 0.55
