"""Tests for the Monte-Carlo greedy baselines (repro.baselines.celf)."""

import numpy as np
import pytest

from repro.baselines import celf_pp, greedy_celf
from repro.diffusion import estimate_spread
from repro.graph import constant_weights, path_graph, star_graph, uniform_random_weights
from repro.graph.generators import barabasi_albert

from conftest import assert_valid_seed_set


@pytest.fixture(scope="module")
def small_graph():
    return uniform_random_weights(barabasi_albert(60, 2, seed=3), seed=2, scale=0.4)


class TestGreedyCelf:
    def test_valid_seed_set(self, small_graph):
        res = greedy_celf(small_graph, 4, trials=30, seed=1)
        assert_valid_seed_set(res.seeds, small_graph.n, 4)
        assert res.oracle_calls >= small_graph.n  # initial pass at minimum
        assert len(res.gains) == 4

    def test_gains_monotone_nonincreasing(self, small_graph):
        """Submodularity: recorded marginal gains decrease (within MC noise)."""
        res = greedy_celf(small_graph, 5, trials=50, seed=1)
        for a, b in zip(res.gains, res.gains[1:]):
            assert b <= a + 2.0  # slack for Monte-Carlo noise

    def test_picks_obvious_hub(self):
        g = constant_weights(star_graph(20), 0.9)
        res = greedy_celf(g, 1, trials=40, seed=1)
        assert res.seeds.tolist() == [0]

    def test_quality_close_to_imm(self, small_graph):
        """Both optimize the same objective; spreads should be similar."""
        from repro.imm import imm

        celf_res = greedy_celf(small_graph, 4, trials=60, seed=1)
        imm_res = imm(small_graph, k=4, eps=0.5, seed=1)
        celf_spread = estimate_spread(
            small_graph, celf_res.seeds, "IC", trials=300, seed=7
        ).mean
        imm_spread = estimate_spread(
            small_graph, imm_res.seeds, "IC", trials=300, seed=7
        ).mean
        assert celf_spread == pytest.approx(imm_spread, rel=0.2)

    def test_lazy_evaluation_saves_calls(self, small_graph):
        """CELF's raison d'être: far fewer oracle calls than naive greedy
        (which would need n calls per round)."""
        res = greedy_celf(small_graph, 4, trials=20, seed=1)
        naive_calls = small_graph.n * 4
        assert res.oracle_calls < naive_calls

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            greedy_celf(small_graph, 0)
        with pytest.raises(ValueError):
            greedy_celf(small_graph, 3, trials=0)


class TestCelfPP:
    def test_same_seeds_as_celf(self, small_graph):
        """Both are exact lazy greedy under identical oracles."""
        a = greedy_celf(small_graph, 4, trials=30, seed=1)
        b = celf_pp(small_graph, 4, trials=30, seed=1)
        np.testing.assert_array_equal(a.seeds, b.seeds)

    def test_valid_output(self, small_graph):
        res = celf_pp(small_graph, 3, trials=20, seed=2)
        assert_valid_seed_set(res.seeds, small_graph.n, 3)

    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            celf_pp(small_graph, 0)
        with pytest.raises(ValueError):
            celf_pp(small_graph, 2, trials=0)
