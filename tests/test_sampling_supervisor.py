"""Tests for the self-healing sampling runtime (repro.sampling.supervisor).

The supervisor's contract, each leg exercised here:

* **bit-identity under recovery** — injected SIGKILLs (single worker or
  a whole group), injected stragglers, and checkpoint/resume all
  reproduce the serial engine's bytes exactly: the counter-addressed
  streams make sample ``j`` a pure function of ``(graph, model, seed,
  j)``, so replay re-derives exactly what was lost.
* **honest degradation** — an expired run deadline raises
  :class:`DeadlineExceededError` with the landed prefix intact, and the
  ``imm`` driver surfaces it as a flagged
  :class:`~repro.imm.result.DegradedResult` (never a silent full-θ
  result); an exhausted crash budget raises
  :class:`CrashBudgetExhaustedError` with the engine fully cleaned up.
* **durable checkpoints** — the block spill survives process death
  (write-ahead data + atomic cursor), rejects mismatched identities,
  and truncates torn tails on reopen.

The chaos test (`TestChaosKill`) SIGKILLs a *live* worker pid mid-run
from outside the fault-plan machinery — the real-world event, not the
simulated one.  Pool tests carry ``@pytest.mark.parallel`` so the
conftest SIGALRM watchdog converts a wedged pool into a failure.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest
from multiprocessing import shared_memory as _shm

from repro.imm import DegradedResult, imm
from repro.sampling import (
    BatchedRRRSampler,
    BlockCheckpointSink,
    CheckpointError,
    SortedRRRCollection,
)
from repro.sampling.supervisor import (
    CrashBudgetExhaustedError,
    DeadlineExceededError,
    SupervisedSamplingEngine,
    build_sampling_engine,
)

THETA = 300


def _reference(graph, model, theta, seed):
    coll = SortedRRRCollection(graph.n)
    indices = np.arange(theta, dtype=np.int64)
    edges = BatchedRRRSampler(graph, model).sample_into(coll, indices, seed)
    flat, indptr, _ = coll.flattened()
    return flat, indptr, edges


def _drive(engine, graph, theta, seed, chunk_size=None):
    coll = SortedRRRCollection(graph.n)
    indices = np.arange(theta, dtype=np.int64)
    edges = engine.sample_into(coll, indices, seed, chunk_size=chunk_size)
    flat, indptr, _ = coll.flattened()
    return flat, indptr, edges


def _assert_bitwise(got, ref):
    for a, b in zip(got, ref):
        assert np.array_equal(a, b)


class TestSerialSupervised:
    """workers=1: no pool, but deadline + checkpoint must still work."""

    def test_bitwise_equal(self, ba_graph):
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(ba_graph, "IC", workers=1) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
        _assert_bitwise(got, ref)

    def test_checkpoint_then_resume(self, ba_graph, tmp_path):
        ck = tmp_path / "run"
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=1, checkpoint_dir=ck
        ) as eng:
            coll = SortedRRRCollection(ba_graph.n)
            eng.sample_into(coll, np.arange(120, dtype=np.int64), 3)
            assert eng.stats.checkpoint_bytes > 0
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=1, resume_from=ck
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            assert eng.stats.resumed_samples == 120
        _assert_bitwise(got, ref)

    def test_deadline_raises_with_prefix(self, ba_graph):
        eng = SupervisedSamplingEngine(ba_graph, "IC", workers=1, deadline=1e-4)
        try:
            time.sleep(0.002)
            coll = SortedRRRCollection(ba_graph.n)
            with pytest.raises(DeadlineExceededError):
                eng.sample_into(coll, np.arange(THETA, dtype=np.int64), 3)
            assert eng.stats.deadline_expired
            assert len(coll) < THETA
        finally:
            eng.close()

    def test_factory(self, ba_graph):
        eng = build_sampling_engine(ba_graph, "IC", workers=1, supervise=True)
        assert isinstance(eng, SupervisedSamplingEngine)
        eng.close()
        eng = build_sampling_engine(ba_graph, "IC", workers=1)
        assert not isinstance(eng, SupervisedSamplingEngine)
        eng.close()
        with pytest.raises(ValueError, match="supervise=True"):
            build_sampling_engine(
                ba_graph, "IC", workers=1, supervisor_opts={"spares": 2}
            )

    def test_rejects_unmappable_fault_classes(self, ba_graph):
        for plan in ("transient:@2", "corrupt:0@1", "oom:1@2",
                     "crash:0@phase=Sample"):
            with pytest.raises(ValueError):
                SupervisedSamplingEngine(
                    ba_graph, "IC", workers=1, fault_plan=plan
                )


@pytest.mark.parallel
class TestInjectedFaults:
    """The fault grammar drives real OS events against the pool."""

    def test_crash_replay_bitexact(self, ba_graph):
        # The straggler pins block 8 in flight (speculation disabled), so
        # at the kill point at least one block is provably un-landed and
        # must be replayed — the assertion cannot race run completion.
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            fault_plan="crash:0@2;straggler:8x2", straggler_factor=None,
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            assert eng.stats.injected_crashes == 1
            assert eng.stats.rebuilds >= 1
            assert eng.stats.promotions >= 1  # the spare pool was used
            assert eng.stats.blocks_replayed >= 1
        _assert_bitwise(got, ref)

    def test_switch_group_kill_bitexact(self, ba_graph):
        """Correlated failure: every worker in the pool dies at once."""
        ref = _reference(ba_graph, "IC", THETA, seed=5)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            fault_plan="switch:0-1@3",
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=5)
            assert eng.stats.injected_crashes == 2
            assert eng.stats.rebuilds >= 1
        _assert_bitwise(got, ref)

    def test_straggler_speculation_bitexact(self, ba_graph):
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            fault_plan="straggler:3x4", straggler_sleep=0.15,
            straggler_floor=0.02, straggler_factor=2.0,
            straggler_min_history=2,
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            assert eng.stats.injected_sleeps == 1
            assert eng.stats.speculative_launched >= 1
        _assert_bitwise(got, ref)

    def test_arena_growth_under_crash_replay_bitexact(self, ba_graph):
        """A 4 KiB first arena segment plus a mid-run kill: replayed
        blocks land from freshly reserved extents, bytes unchanged."""
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            arena_bytes=4096, fault_plan="crash:0@2",
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            assert eng.stats.arena_segments >= 2
            assert eng.stats.injected_crashes == 1
        _assert_bitwise(got, ref)

    def test_crash_budget_exhaustion_cleans_up(self, ba_graph, tmp_path):
        ck = tmp_path / "run"
        eng = SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            crash_budget=0, fault_plan="crash:0@1", checkpoint_dir=ck,
        )
        arena_names: list[str] = []
        new_segment = eng._new_arena_segment

        def spy(min_bytes):
            out = new_segment(min_bytes)
            arena_names.append(eng._arena[-1]["seg"].name)
            return out

        eng._new_arena_segment = spy
        coll = SortedRRRCollection(ba_graph.n)
        with pytest.raises(CrashBudgetExhaustedError, match="budget"):
            eng.sample_into(coll, np.arange(THETA, dtype=np.int64), 3)
        assert eng.closed  # exhaustion closes pools, spares, and shm
        assert arena_names  # the run really allocated output arena
        for name in arena_names:  # unlinked on the typed-error path too
            with pytest.raises(FileNotFoundError):
                _shm.SharedMemory(name=name)
        # the checkpoint directory survives, consistent, no temp litter
        assert not list(ck.glob("*.tmp"))
        sink = BlockCheckpointSink(ck, n=ba_graph.n, model="IC", seed=3,
                                   readonly=True)
        assert sink.landed == len(coll)
        sink.close()

    def test_kill_then_resume_bitexact(self, ba_graph, tmp_path):
        """Process-death recovery: checkpoint, crash out, resume on disk."""
        ck = tmp_path / "run"
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        eng = SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, backoff_base=0.0,
            crash_budget=0, fault_plan="crash:0@4", checkpoint_dir=ck,
        )
        coll = SortedRRRCollection(ba_graph.n)
        with pytest.raises(CrashBudgetExhaustedError):
            eng.sample_into(coll, np.arange(THETA, dtype=np.int64), 3)
        landed = len(coll)
        assert 0 < landed < THETA
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, resume_from=ck
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            assert eng.stats.resumed_samples == landed
        _assert_bitwise(got, ref)

    def test_pool_deadline_prefix(self, ba_graph):
        ref_flat, ref_indptr, _ = _reference(ba_graph, "IC", THETA, seed=3)
        eng = SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, deadline=1e-4
        )
        try:
            coll = SortedRRRCollection(ba_graph.n)
            with pytest.raises(DeadlineExceededError):
                eng.sample_into(coll, np.arange(THETA, dtype=np.int64), 3)
            flat, indptr, _ = coll.flattened()
            assert np.array_equal(flat, ref_flat[: len(flat)])
            assert np.array_equal(indptr, ref_indptr[: len(coll) + 1])
        finally:
            eng.close()

    def test_progress_refreshes_task_watchdog(self, ba_graph):
        """task_timeout is per-submission: steady landings must never
        trip it even when the whole run takes longer than the budget."""
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=29, task_timeout=0.6,
            backoff_base=0.0, fault_plan="straggler:2x2;straggler:5x2",
            straggler_sleep=0.2, straggler_factor=None,
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
            # ~0.8s of injected sleep > 0.6s budget, but per-block
            # progress kept resetting the watchdog: no recovery happened
            assert eng.stats.crashes_observed == 0
        _assert_bitwise(got, ref)


@pytest.mark.parallel
class TestChaosKill:
    """A live worker pid is SIGKILLed mid-run from outside the engine."""

    def test_external_sigkill_bitexact(self, ba_graph):
        ref = _reference(ba_graph, "IC", 1200, seed=7)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=17, backoff_base=0.0
        ) as eng:
            pids = eng.worker_pids()  # pings: forces lazy worker spawn
            assert pids

            def assassin():
                time.sleep(0.02)
                try:
                    os.kill(pids[0], signal.SIGKILL)
                except ProcessLookupError:  # worker already rotated
                    pass

            t = threading.Thread(target=assassin)
            t.start()
            got = _drive(eng, ba_graph, 1200, seed=7)
            t.join()
        _assert_bitwise(got, ref)


@pytest.mark.parallel
class TestCountFallback:
    def test_pool_counting_degrades_to_serial(self, ba_graph):
        """A broken pool must not fail the counting pass: it falls back
        to np.bincount and the engine records the degradation."""
        from repro.sampling.parallel_engine import PARALLEL_COUNT_THRESHOLD

        flat = (
            np.arange(PARALLEL_COUNT_THRESHOLD + 10, dtype=np.int64)
            % ba_graph.n
        )
        expected = np.bincount(flat, minlength=ba_graph.n)
        with SupervisedSamplingEngine(
            ba_graph, "IC", workers=2, backoff_base=0.0
        ) as eng:
            for pid in eng.worker_pids():
                os.kill(pid, signal.SIGKILL)
            counts = eng.count_partitioned(flat, ba_graph.n)
            assert eng.stats.count_fallbacks == 1
        assert np.array_equal(counts, expected)


@pytest.mark.parallel
class TestSupervisedDrivers:
    def test_imm_supervised_bitexact_under_crash(self, ba_graph):
        base = imm(ba_graph, k=5, eps=0.5, seed=2, theta_cap=400)
        res = imm(
            ba_graph, k=5, eps=0.5, seed=2, theta_cap=400,
            workers=2, supervise=True,
            supervisor_opts={
                "fault_plan": "crash:0@2", "chunk_size": 29,
                "backoff_base": 0.0,
            },
        )
        assert np.array_equal(base.seeds, res.seeds)
        assert base.theta == res.theta
        assert res.extra["supervised"]
        assert res.extra["supervisor"]["injected_crashes"] == 1

    def test_imm_deadline_returns_degraded_result(self, ba_graph):
        res = imm(
            ba_graph, k=5, eps=0.5, seed=2, theta_cap=400,
            workers=2, supervise=True, supervisor_opts={"deadline": 1e-4},
        )
        assert isinstance(res, DegradedResult)
        assert res.degraded and res.extra["degraded"]
        assert res.extra["theta_effective"] == res.num_samples
        assert res.epsilon_effective > res.epsilon
        assert "DEGRADED" in res.summary()

    def test_hypergraph_layout_rejects_supervision(self, ba_graph):
        with pytest.raises(ValueError, match="sorted"):
            imm(
                ba_graph, k=5, eps=0.5, seed=2, theta_cap=200,
                layout="hypergraph", supervise=True,
            )


class TestCheckpointSink:
    def _fill(self, sink, blocks, seed=3):
        """Append synthetic contiguous blocks of 1-vertex samples."""
        for lo, hi in blocks:
            idx = np.arange(lo, hi, dtype=np.int64)
            flat = (idx % 7).astype(np.int32)
            sizes = np.ones(hi - lo, dtype=np.int64)
            edges = np.full(hi - lo, 2, dtype=np.int64)
            sink.append_block(idx, flat, sizes, edges)

    def test_roundtrip(self, tmp_path):
        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        self._fill(sink, [(0, 10), (10, 25)])
        assert sink.landed == 25
        sink.close()
        back = BlockCheckpointSink(
            tmp_path / "run", n=7, model="IC", seed=3, readonly=True
        )
        flat, sizes, edges = back.load_range(5, 20)
        assert np.array_equal(flat, (np.arange(5, 20) % 7).astype(np.int32))
        assert sizes.sum() == 15 and edges.sum() == 30
        back.close()

    def test_identity_mismatch_rejected(self, tmp_path):
        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        self._fill(sink, [(0, 10)])
        sink.close()
        for kw in (dict(n=8, model="IC", seed=3),
                   dict(n=7, model="LT", seed=3),
                   dict(n=7, model="IC", seed=4)):
            with pytest.raises(CheckpointError):
                BlockCheckpointSink(tmp_path / "run", readonly=True, **kw)

    def test_non_contiguous_append_rejected(self, tmp_path):
        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        self._fill(sink, [(0, 10)])
        with pytest.raises(CheckpointError, match="contiguous"):
            self._fill(sink, [(11, 20)])
        sink.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        """Bytes appended after the last durable cursor are discarded."""
        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        self._fill(sink, [(0, 10)])
        sink.close()
        # simulate a crash between the data append and the cursor write
        with open(tmp_path / "run" / "flat.i32.bin", "ab") as fh:
            fh.write(b"\x01\x02\x03\x04" * 5)
        back = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        assert back.landed == 10
        self._fill(back, [(10, 20)])  # appending after repair still works
        flat, _, _ = back.load_range(0, 20)
        assert len(flat) == 20
        back.close()

    def test_cursor_fold_detects_foreign_data(self, tmp_path):
        """A cursor whose stream fold disagrees with the identity is
        rejected — the spill belongs to a different sample sequence."""
        import json

        sink = BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3)
        self._fill(sink, [(0, 10)])
        sink.close()
        cursor = tmp_path / "run" / "cursor.json"
        state = json.loads(cursor.read_text())
        state["stream_fold"] ^= 1
        cursor.write_text(json.dumps(state))
        with pytest.raises(CheckpointError, match="fingerprint"):
            BlockCheckpointSink(tmp_path / "run", n=7, model="IC", seed=3,
                                readonly=True)
