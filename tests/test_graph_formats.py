"""Tests for the METIS and MatrixMarket readers (repro.graph.io)."""

import io

import pytest

from repro.graph import read_matrix_market, read_metis


class TestReadMetis:
    def test_basic_unweighted(self):
        # 3 vertices, 2 undirected edges: 1-2, 2-3 (1-indexed).
        text = "3 2\n2\n1 3\n2\n"
        g = read_metis(io.StringIO(text))
        assert g.n == 3
        assert g.m == 4  # both directions listed
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)

    def test_edge_weights_as_probabilities(self):
        # fmt=001: edge weights follow each neighbor.
        text = "2 1 001\n2 0.75\n1 0.75\n"
        g = read_metis(io.StringIO(text))
        assert g.out_edge_probs(0).tolist() == [0.75]

    def test_comments_skipped(self):
        text = "% header comment\n2 1\n2\n1\n"
        g = read_metis(io.StringIO(text))
        assert g.m == 2

    def test_default_prob(self):
        g = read_metis(io.StringIO("2 1\n2\n1\n"), default_prob=0.3)
        assert g.out_edge_probs(0).tolist() == [0.3]

    def test_isolated_vertex_blank_line(self):
        # vertex 3 has no neighbors: its adjacency line is blank.
        g = read_metis(io.StringIO("3 1\n2\n1\n\n"))
        assert g.n == 3
        assert g.out_degree(2) == 0

    def test_vertex_count_mismatch(self):
        with pytest.raises(ValueError, match="declares 3 vertices"):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_malformed_header(self):
        with pytest.raises(ValueError, match="header"):
            read_metis(io.StringIO("1\n\n"))
        with pytest.raises(ValueError, match="empty"):
            read_metis(io.StringIO("%only a comment\n"))

    def test_neighbor_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            read_metis(io.StringIO("2 1\n3\n1\n"))

    def test_odd_weight_fields(self):
        with pytest.raises(ValueError, match="odd field count"):
            read_metis(io.StringIO("2 1 001\n2\n1 0.5\n"))


class TestReadMatrixMarket:
    def test_general_real(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 3 2\n"
            "1 2 0.5\n"
            "3 1 0.25\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.n == 3 and g.m == 2
        probs = {(u, v): p for u, v, p in g.edges()}
        assert probs[(0, 1)] == 0.5
        assert probs[(2, 0)] == 0.25

    def test_symmetric_adds_both_directions(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 0.4\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_pattern_uses_default(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
        g = read_matrix_market(io.StringIO(text), default_prob=0.2)
        assert g.out_edge_probs(0).tolist() == [0.2]

    def test_weights_clipped_to_unit(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -3.5\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.out_edge_probs(0).tolist() == [1.0]  # |−3.5| clipped

    def test_missing_header(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(io.StringIO("1 2 0.5\n"))

    def test_array_layout_rejected(self):
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n2 2\n")
            )

    def test_entry_out_of_range(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 0.5\n"
        with pytest.raises(ValueError, match="out of range"):
            read_matrix_market(io.StringIO(text))

    def test_file_path(self, tmp_path):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.9\n"
        )
        g = read_matrix_market(path)
        assert g.m == 1
