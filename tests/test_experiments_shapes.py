"""Shape tests for the remaining experiments (figs 3-6, 8) at mini scale."""

import dataclasses

from repro.experiments import CI, fig3, fig4, fig5, fig6, fig8

MINI = dataclasses.replace(
    CI,
    name="mini",
    fig34_eps_grid=(0.4, 0.55),
    fig34_k_grid=(5, 15),
    fig34_k_fixed=5,
    mt_threads=(2, 20),
    k_mt=5,
    edison_nodes=(64, 1024),
    k_dist=5,
    eps_dist=0.5,
    sweep_datasets=("cit-HepTh",),
    big_datasets=("com-YouTube",),
    theta_cap=2500,
)


def _by(rows, **filters):
    idx = {"graph": 0, "eps": 1, "k": 2}
    out = rows
    for key, value in filters.items():
        out = [r for r in out if r[idx[key]] == value]
    return out


class TestFig3Shape:
    def test_eps_drives_runtime_and_phases(self):
        res = fig3.run(scale=MINI)
        tight = _by(res.rows, eps=0.4)[0]
        loose = _by(res.rows, eps=0.55)[0]
        assert tight[-1] > loose[-1]  # total seconds column
        # Estimation + Sample dominate (columns 3 and 4)
        assert (tight[3] + tight[4]) / tight[-1] > 0.5


class TestFig4Shape:
    def test_k_drives_runtime(self):
        res = fig4.run(scale=MINI)
        small = _by(res.rows, k=5)[0]
        large = _by(res.rows, k=15)[0]
        assert large[-1] > small[-1]


class TestFig56Shape:
    def test_ic_scales_and_lt_is_cheaper(self):
        lt = fig5.run(scale=MINI)
        ic = fig6.run(scale=MINI)
        # threads column = 1; total seconds column = 2
        lt_t2 = [r for r in lt.rows if r[1] == 2][0][2]
        lt_t20 = [r for r in lt.rows if r[1] == 20][0][2]
        ic_t2 = [r for r in ic.rows if r[1] == 2][0][2]
        ic_t20 = [r for r in ic.rows if r[1] == 20][0][2]
        assert ic_t2 / ic_t20 > 2.0  # IC scales well
        assert lt_t2 < ic_t2  # LT far cheaper in absolute terms
        assert lt_t2 / lt_t20 <= ic_t2 / ic_t20 + 1.0  # and scales no better

    def test_speedup_column_relative_to_two_threads(self):
        ic = fig6.run(scale=MINI)
        first = [r for r in ic.rows if r[1] == 2][0]
        assert first[3] == 1.0  # speedup vs 2t column


#: fig8 needs enough sampling work that hundreds of nodes still help.
MINI8 = dataclasses.replace(
    MINI, k_dist=10, eps_dist=0.35, theta_cap=25_000, edison_nodes=(64, 256, 1024)
)


class TestFig8Shape:
    def test_ic_keeps_gaining_at_hundreds_of_nodes(self):
        # At the stand-ins' reduced sampling volume the curve saturates
        # earlier than the paper's (whose theta is ~100x larger); the
        # shape assertion is that IC still gains at hundreds of nodes
        # and never degrades at 1024.
        res = fig8.run(scale=MINI8)
        ic = [r for r in res.rows if r[1] == "IC"]
        t64 = [r for r in ic if r[2] == 64][0][3]
        t256 = [r for r in ic if r[2] == 256][0][3]
        t1024 = [r for r in ic if r[2] == 1024][0][3]
        assert t64 > t256
        assert t1024 <= t256 * 1.2

    def test_lt_flattens(self):
        res = fig8.run(scale=MINI)

        def ratio(model):
            rows = [r for r in res.rows if r[1] == model]
            t64 = [r for r in rows if r[2] == 64][0][3]
            t1024 = [r for r in rows if r[2] == 1024][0][3]
            return t64 / t1024

        assert ratio("IC") > ratio("LT")
