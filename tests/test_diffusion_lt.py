"""Tests for forward Linear Threshold simulation (repro.diffusion.lt)."""

import numpy as np
import pytest

from repro.diffusion import lt_trial
from repro.graph import constant_weights, from_edge_list, lt_normalize, path_graph, star_graph
from repro.rng import SplitMix64


class TestLTTrial:
    def test_seeds_always_active(self, tiny_graph):
        out = lt_trial(tiny_graph, np.array([4]), SplitMix64(0))
        assert 4 in out.tolist()

    def test_weight_one_cascades_fully(self):
        # In-weight 1.0 ≥ any threshold in [0, 1): deterministic cascade.
        g = constant_weights(path_graph(6), 1.0)
        out = lt_trial(g, np.array([0]), SplitMix64(1))
        assert out.tolist() == [0, 1, 2, 3, 4, 5]

    def test_weight_zero_never_activates(self):
        g = constant_weights(star_graph(8), 0.0)
        out = lt_trial(g, np.array([0]), SplitMix64(2))
        assert out.tolist() == [0]

    def test_activation_frequency_matches_weight(self):
        # Single in-edge with weight w: P[activate] = P[threshold <= w] = w.
        g = from_edge_list(2, [(0, 1, 0.3)])
        hits = sum(
            1 in lt_trial(g, np.array([0]), SplitMix64(i)).tolist()
            for i in range(3000)
        )
        assert 0.27 < hits / 3000 < 0.33

    def test_accumulation_across_neighbors(self):
        # Vertex 2 has in-weights 0.5 + 0.5 from both seeds: always active.
        g = from_edge_list(3, [(0, 2, 0.5), (1, 2, 0.5)])
        for i in range(50):
            out = lt_trial(g, np.array([0, 1]), SplitMix64(i))
            assert 2 in out.tolist()

    def test_deterministic_per_stream(self, ba_graph_lt):
        a = lt_trial(ba_graph_lt, np.array([1]), SplitMix64(9))
        b = lt_trial(ba_graph_lt, np.array([1]), SplitMix64(9))
        np.testing.assert_array_equal(a, b)

    def test_out_of_range_seed_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            lt_trial(tiny_graph, np.array([5]), SplitMix64(0))

    def test_empty_seed_set(self, tiny_graph):
        out = lt_trial(tiny_graph, np.empty(0, np.int64), SplitMix64(0))
        assert len(out) == 0

    def test_lt_smaller_than_ic_on_same_weights(self, ba_graph, ba_graph_lt):
        # The paper's observation behind Figures 5/6: LT spreads (and RRR
        # sets) are much smaller than IC on comparable weights.
        from repro.diffusion import ic_trial

        ic_sizes = [
            len(ic_trial(ba_graph, np.array([0]), SplitMix64(i))) for i in range(100)
        ]
        lt_sizes = [
            len(lt_trial(ba_graph_lt, np.array([0]), SplitMix64(i)))
            for i in range(100)
        ]
        assert np.mean(lt_sizes) <= np.mean(ic_sizes)
