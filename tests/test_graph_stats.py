"""Tests for graph statistics (repro.graph.stats)."""

from repro.graph import graph_stats, path_graph, star_graph
from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph

import numpy as np


class TestGraphStats:
    def test_star(self):
        stats = graph_stats(star_graph(11))
        assert stats.nodes == 11
        assert stats.edges == 10
        assert stats.max_degree == 10
        assert stats.avg_degree == 10 / 11
        assert stats.degree_skew == 10 / (10 / 11)

    def test_path(self):
        stats = graph_stats(path_graph(5))
        assert stats.max_degree == 1
        assert stats.avg_degree == 4 / 5

    def test_empty_graph(self):
        empty = CSRGraph(
            0,
            np.zeros(1, np.int64),
            np.empty(0, np.int32),
            np.empty(0),
            np.zeros(1, np.int64),
            np.empty(0, np.int32),
            np.empty(0),
        )
        stats = graph_stats(empty)
        assert stats.nodes == 0 and stats.edges == 0
        assert stats.avg_degree == 0.0

    def test_row_matches_table2_column_order(self):
        stats = graph_stats(from_edge_list(3, [(0, 1), (0, 2)]))
        assert stats.row() == (3, 2, 2 / 3, 2)
