"""Tests for the batch Sample() function (repro.sampling.sampler)."""

import numpy as np
import pytest

from repro.sampling import RRRSampler, SortedRRRCollection, sample_batch


class TestSampleBatch:
    def test_reaches_target(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        batch = sample_batch(ba_graph, "IC", coll, 25, seed=1)
        assert len(coll) == 25
        assert batch.count == 25
        assert batch.first_index == 0

    def test_incremental_topup(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", coll, 10, seed=1)
        batch = sample_batch(ba_graph, "IC", coll, 25, seed=1)
        assert batch.first_index == 10
        assert batch.count == 15
        assert len(coll) == 25

    def test_noop_when_target_reached(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", coll, 10, seed=1)
        batch = sample_batch(ba_graph, "IC", coll, 5, seed=1)
        assert batch.count == 0
        assert len(coll) == 10

    def test_split_invariance(self, ba_graph):
        """Sample j is a pure function of (graph, model, seed, j): one
        big batch equals many small ones — the reproducibility property
        the parallel implementations rely on."""
        one = SortedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", one, 30, seed=7)
        many = SortedRRRCollection(ba_graph.n)
        for target in (3, 11, 19, 30):
            sample_batch(ba_graph, "IC", many, target, seed=7)
        assert len(one) == len(many)
        for a, b in zip(one, many):
            np.testing.assert_array_equal(a, b)

    def test_seed_changes_samples(self, ba_graph):
        a = SortedRRRCollection(ba_graph.n)
        b = SortedRRRCollection(ba_graph.n)
        sample_batch(ba_graph, "IC", a, 10, seed=1)
        sample_batch(ba_graph, "IC", b, 10, seed=2)
        assert any(
            not np.array_equal(x, y) for x, y in zip(a, b)
        )

    def test_edges_metering_consistent(self, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        batch = sample_batch(ba_graph, "IC", coll, 20, seed=3)
        assert batch.edges_examined == int(batch.per_sample_edges.sum())
        assert len(batch.per_sample_edges) == 20

    def test_lt_model(self, ba_graph_lt):
        coll = SortedRRRCollection(ba_graph_lt.n)
        batch = sample_batch(ba_graph_lt, "LT", coll, 15, seed=1)
        assert len(coll) == 15
        assert batch.edges_examined >= 0

    def test_negative_target_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            sample_batch(ba_graph, "IC", SortedRRRCollection(ba_graph.n), -1, seed=0)

    def test_reusable_sampler(self, ba_graph):
        coll1 = SortedRRRCollection(ba_graph.n)
        coll2 = SortedRRRCollection(ba_graph.n)
        shared = RRRSampler(ba_graph, "IC")
        sample_batch(ba_graph, "IC", coll1, 12, seed=5, sampler=shared)
        sample_batch(ba_graph, "IC", coll2, 12, seed=5)
        for a, b in zip(coll1, coll2):
            np.testing.assert_array_equal(a, b)
