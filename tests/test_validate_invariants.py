"""Tests for the structural invariant checkers (repro.validate.invariants)."""

import numpy as np
import pytest

from repro.sampling import HypergraphRRRCollection, SortedRRRCollection
from repro.validate import (
    ValidationReport,
    Violation,
    check_collection,
    check_hypergraph_collection,
    check_sorted_collection,
)

SETS = [[0, 2, 5], [1], [2, 5], [0, 3]]


def make(layout, n=6, sets=SETS):
    coll = (SortedRRRCollection if layout == "sorted" else HypergraphRRRCollection)(n)
    for s in sets:
        coll.append(np.asarray(s, np.int32))
    return coll


class TestReport:
    def test_check_records_and_returns(self):
        rep = ValidationReport()
        assert rep.check(True, "a", "s", "d") is True
        assert rep.check(False, "b", "s", "broken") is False
        assert rep.checks_run == 2
        assert not rep.ok
        assert rep.violations == [Violation("b", "s", "broken")]

    def test_merge_accumulates(self):
        a, b = ValidationReport(), ValidationReport()
        a.check(True, "x", "s", "d")
        b.check(False, "y", "s", "d")
        a.merge(b)
        assert a.checks_run == 2
        assert len(a.violations) == 1

    def test_summary_mentions_status(self):
        rep = ValidationReport()
        rep.check(True, "x", "s", "d")
        assert "OK" in rep.summary()
        rep.check(False, "y", "subj", "bad")
        assert "VIOLATION" in rep.summary()
        assert "subj" in rep.summary()


class TestSortedInvariants:
    def test_healthy_collection_passes(self):
        rep = check_sorted_collection(make("sorted"))
        assert rep.ok
        assert rep.checks_run >= 6

    def test_empty_collection_passes(self):
        assert check_sorted_collection(SortedRRRCollection(4)).ok

    def test_unsorted_flat_flagged(self):
        coll = make("sorted")
        coll._flat[0], coll._flat[1] = coll._flat[1], coll._flat[0]
        rep = check_sorted_collection(coll)
        assert any(v.check == "collection.sortedness" for v in rep.violations)

    def test_corrupt_indptr_flagged_without_crashing(self):
        # A non-monotone indptr must become a violation, not an exception
        # inside np.repeat / boundary indexing.
        coll = make("sorted")
        coll._indptr[1] = coll._indptr[2] + 1
        rep = check_sorted_collection(coll)
        assert any(v.check == "collection.indptr-monotone" for v in rep.violations)

    def test_corrupt_sample_of_flagged(self):
        coll = make("sorted")
        coll._sample_of[0] += 1
        rep = check_sorted_collection(coll)
        assert any(v.check == "collection.sample-of" for v in rep.violations)

    def test_byte_model_drift_flagged(self):
        coll = make("sorted")

        class Drifted(SortedRRRCollection):
            def nbytes_model(self):
                return super().nbytes_model() + 1

        coll.__class__ = Drifted
        rep = check_sorted_collection(coll)
        assert any(v.check == "collection.byte-model" for v in rep.violations)

    def test_out_of_range_vertex_flagged(self):
        coll = make("sorted")
        coll._flat[coll.total_entries - 1] = coll.n + 7
        rep = check_sorted_collection(coll)
        assert any(v.check == "collection.vertex-range" for v in rep.violations)


class TestHypergraphInvariants:
    def test_healthy_collection_passes(self):
        rep = check_hypergraph_collection(make("hypergraph"))
        assert rep.ok

    def test_dropped_inverted_entry_flagged(self):
        coll = make("hypergraph")
        coll._inverted[2].pop()
        rep = check_hypergraph_collection(coll)
        assert any(v.check == "collection.inverted-index" for v in rep.violations)

    def test_phantom_inverted_entry_flagged(self):
        coll = make("hypergraph")
        coll._inverted[4].append(0)  # vertex 4 is in no sample
        rep = check_hypergraph_collection(coll)
        assert any(v.check == "collection.inverted-index" for v in rep.violations)


class TestDispatch:
    def test_dispatches_by_layout(self):
        assert check_collection(make("sorted")).ok
        assert check_collection(make("hypergraph")).ok

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            check_collection([1, 2, 3])
