"""Tests for the degree/PageRank/RIS/TIM baselines."""

import numpy as np
import pytest

from repro.baselines import (
    degree_discount,
    high_degree,
    kpt_estimate,
    pagerank_seeds,
    ris,
    single_discount,
    tim_plus_theta,
)
from repro.baselines.pagerank import pagerank_scores
from repro.graph import (
    complete_graph,
    constant_weights,
    from_edge_list,
    path_graph,
    star_graph,
)

from conftest import assert_valid_seed_set


class TestHighDegree:
    def test_star_hub_first(self):
        assert high_degree(star_graph(10), 1).tolist() == [0]

    def test_order_and_ties(self):
        # 0 and 1 both have out-degree 2; tie goes to the smaller id.
        g = from_edge_list(4, [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert high_degree(g, 3).tolist() == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            high_degree(star_graph(5), 0)


class TestDiscountHeuristics:
    def test_single_discount_spreads_selection(self):
        # Two disjoint stars: after taking hub A, hub B must follow even
        # if A's spokes have residual degree.
        edges = [(0, i) for i in range(1, 6)] + [(6, i) for i in range(7, 12)]
        g = from_edge_list(12, edges)
        seeds = single_discount(g, 2)
        assert set(seeds.tolist()) == {0, 6}

    def test_degree_discount_on_clique(self):
        # In a clique every pick discounts the others; selection still
        # returns k distinct vertices.
        g = complete_graph(6)
        seeds = degree_discount(g, 3, p=0.2)
        assert_valid_seed_set(seeds, 6, 3)

    def test_degree_discount_prefers_hub(self):
        seeds = degree_discount(star_graph(15), 1)
        assert seeds.tolist() == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            single_discount(star_graph(5), 99)
        with pytest.raises(ValueError):
            degree_discount(star_graph(5), 2, p=1.5)


class TestPageRank:
    def test_scores_sum_to_one(self, ba_graph):
        scores = pagerank_scores(ba_graph)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_uniform_on_cycle(self):
        g = from_edge_list(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        scores = pagerank_scores(g)
        np.testing.assert_allclose(scores, 0.25, atol=1e-6)

    def test_matches_networkx(self, ba_graph):
        nx = pytest.importorskip("networkx")
        g_nx = nx.DiGraph()
        g_nx.add_nodes_from(range(ba_graph.n))
        g_nx.add_edges_from((u, v) for u, v, _ in ba_graph.edges())
        expected = nx.pagerank(g_nx, alpha=0.85, tol=1e-12)
        got = pagerank_scores(ba_graph)
        for v in range(ba_graph.n):
            assert got[v] == pytest.approx(expected[v], abs=1e-6)

    def test_seeds_valid(self, ba_graph):
        seeds = pagerank_seeds(ba_graph, 5)
        assert_valid_seed_set(seeds, ba_graph.n, 5)

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            pagerank_scores(ba_graph, damping=1.0)
        with pytest.raises(ValueError):
            pagerank_scores(ba_graph, tol=0.0)
        with pytest.raises(ValueError):
            pagerank_seeds(ba_graph, 0)


class TestRIS:
    def test_budget_controls_samples(self, ba_graph):
        small = ris(ba_graph, 3, seed=1, budget_constant=1e-4)
        large = ris(ba_graph, 3, seed=1, budget_constant=1e-3)
        assert large.num_samples > small.num_samples
        assert small.edges_examined >= 0

    def test_max_samples_cap(self, ba_graph):
        res = ris(ba_graph, 3, seed=1, budget_constant=10.0, max_samples=50)
        assert res.num_samples <= 50

    def test_valid_seed_set(self, ba_graph):
        res = ris(ba_graph, 4, seed=1, budget_constant=1e-3)
        assert_valid_seed_set(res.seeds, ba_graph.n, 4)
        assert 0.0 <= res.coverage <= 1.0

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            ris(ba_graph, 0)
        with pytest.raises(ValueError):
            ris(ba_graph, 3, eps=0.0)


class TestTIM:
    def test_kpt_within_spread_bounds(self, ba_graph):
        res = kpt_estimate(ba_graph, 5, seed=1)
        # KPT estimates the expected spread of a random k-seed set: at
        # least 1, at most n.
        assert 1.0 <= res.kpt <= ba_graph.n
        assert res.samples_used > 0

    def test_theta_positive_and_decreasing_in_eps(self, ba_graph):
        tight = tim_plus_theta(ba_graph, 5, 0.3, seed=1)
        loose = tim_plus_theta(ba_graph, 5, 0.6, seed=1)
        assert tight > loose > 0

    def test_tim_theta_larger_than_imm(self, ba_graph):
        """TIM+'s KPT bound is looser than IMM's martingale LB, so its θ
        is larger — the estimator-tightness result IMM's paper claims."""
        from repro.imm import estimate_theta

        imm_theta = estimate_theta(ba_graph, 5, 0.5, "IC", seed=1).theta
        tim_theta = tim_plus_theta(ba_graph, 5, 0.5, seed=1)
        assert tim_theta > imm_theta

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            kpt_estimate(ba_graph, 0)
        with pytest.raises(ValueError):
            tim_plus_theta(ba_graph, 3, 1.5)
        with pytest.raises(ValueError):
            kpt_estimate(constant_weights(path_graph(2), 0.5), 3)
