"""Tests for block partitioning (repro.parallel.partition)."""

import numpy as np
import pytest

from repro.parallel import block_bounds, block_partition, owner_of


class TestBlockBounds:
    def test_matches_paper_formula(self):
        # Algorithm 4: vl = |V| * t / p
        bounds = block_bounds(10, 3)
        assert bounds.tolist() == [0, 3, 6, 10]

    def test_exact_cover(self):
        for total in (0, 1, 7, 100):
            for p in (1, 2, 3, 7, 16):
                bounds = block_bounds(total, p)
                assert bounds[0] == 0
                assert bounds[-1] == total
                assert np.all(np.diff(bounds) >= 0)

    def test_balanced_within_one(self):
        bounds = block_bounds(100, 7)
        sizes = np.diff(bounds)
        assert sizes.max() - sizes.min() <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            block_bounds(-1, 2)
        with pytest.raises(ValueError):
            block_bounds(10, 0)


class TestBlockPartition:
    def test_ranges_disjoint_and_complete(self):
        total, p = 23, 5
        seen = []
        for r in range(p):
            lo, hi = block_partition(total, r, p)
            seen.extend(range(lo, hi))
        assert seen == list(range(total))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            block_partition(10, 3, 3)
        with pytest.raises(ValueError):
            block_partition(10, -1, 3)


class TestOwnerOf:
    def test_inverse_of_partition(self):
        total, p = 37, 6
        for r in range(p):
            lo, hi = block_partition(total, r, p)
            for idx in range(lo, hi):
                assert owner_of(idx, total, p) == r

    def test_vectorized(self):
        owners = owner_of(np.arange(10), 10, 3)
        assert owners.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 2]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            owner_of(10, 10, 3)
        with pytest.raises(ValueError):
            owner_of(np.array([0, 11]), 10, 3)
