"""Cross-module integration tests: the full pipelines users run."""

import numpy as np
import pytest

from repro import estimate_spread, imm, imm_dist, imm_mt
from repro.baselines import degree_discount, high_degree
from repro.datasets import load
from repro.parallel import EDISON, PUMA


class TestFullPipeline:
    def test_dataset_to_seeds_to_spread(self):
        """The quickstart path: load a stand-in, run IMM, evaluate."""
        graph = load("cit-HepTh", "IC")
        result = imm(graph, k=10, eps=0.5, seed=1)
        spread = estimate_spread(graph, result.seeds, "IC", trials=200, seed=2)
        assert spread.mean >= 10  # at least the seeds themselves

    def test_all_three_variants_agree(self):
        """Serial, multithreaded and distributed compute one answer."""
        graph = load("com-Amazon", "IC")
        serial = imm(graph, k=6, eps=0.5, seed=5, theta_cap=5000)
        mt = imm_mt(graph, k=6, eps=0.5, num_threads=16, seed=5, theta_cap=5000)
        dist = imm_dist(
            graph, k=6, eps=0.5, num_nodes=4, machine=EDISON, seed=5, theta_cap=5000
        )
        np.testing.assert_array_equal(serial.seeds, mt.seeds)
        np.testing.assert_array_equal(serial.seeds, dist.seeds)

    def test_imm_beats_degree_heuristics_or_ties(self):
        """IMM should never lose badly to degree heuristics (and usually
        wins) — the quality argument for approximation guarantees."""
        graph = load("soc-Epinions1", "IC")
        k = 10
        imm_seeds = imm(graph, k=k, eps=0.4, seed=1).seeds
        hd = high_degree(graph, k)
        dd = degree_discount(graph, k)
        trials = 150
        s_imm = estimate_spread(graph, imm_seeds, "IC", trials=trials, seed=9).mean
        s_hd = estimate_spread(graph, hd, "IC", trials=trials, seed=9).mean
        s_dd = estimate_spread(graph, dd, "IC", trials=trials, seed=9).mean
        assert s_imm >= 0.9 * max(s_hd, s_dd)

    def test_tighter_eps_does_not_hurt_quality(self):
        """The Figure 1 story: more samples (smaller eps) yields an
        equally good or better seed set."""
        graph = load("cit-HepTh", "IC")
        loose = imm(graph, k=10, eps=0.6, seed=2)
        tight = imm(graph, k=10, eps=0.3, seed=2)
        assert tight.theta > loose.theta
        s_loose = estimate_spread(graph, loose.seeds, "IC", trials=300, seed=4).mean
        s_tight = estimate_spread(graph, tight.seeds, "IC", trials=300, seed=4).mean
        assert s_tight >= s_loose - 3.0  # MC noise allowance

    def test_lt_pipeline_end_to_end(self):
        graph = load("com-DBLP", "LT")
        result = imm(graph, k=5, eps=0.5, model="LT", seed=3)
        spread = estimate_spread(graph, result.seeds, "LT", trials=100, seed=1)
        assert spread.mean >= 5

    def test_reproducibility_across_everything(self):
        """Same seed, same answer — serial and parallel, twice."""
        graph = load("com-YouTube", "IC")
        runs = [
            imm(graph, k=5, eps=0.5, seed=11, theta_cap=4000).seeds,
            imm(graph, k=5, eps=0.5, seed=11, theta_cap=4000).seeds,
            imm_mt(graph, k=5, eps=0.5, num_threads=8, seed=11, theta_cap=4000).seeds,
            imm_dist(
                graph, k=5, eps=0.5, num_nodes=3, machine=PUMA, seed=11, theta_cap=4000
            ).seeds,
        ]
        for seeds in runs[1:]:
            np.testing.assert_array_equal(runs[0], seeds)
