"""Tests for the θ estimator (repro.imm.theta)."""

import math

import pytest

from repro.imm import ThetaEstimate, estimate_theta, lambda_prime, lambda_star, logcnk
from repro.sampling import HypergraphRRRCollection, SortedRRRCollection


class TestLogCnk:
    def test_matches_exact_binomial(self):
        assert logcnk(10, 3) == pytest.approx(math.log(120))
        assert logcnk(5, 0) == pytest.approx(0.0)
        assert logcnk(5, 5) == pytest.approx(0.0)

    def test_symmetry(self):
        assert logcnk(20, 7) == pytest.approx(logcnk(20, 13))

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            logcnk(5, 6)
        with pytest.raises(ValueError):
            logcnk(5, -1)


class TestLambdas:
    def test_lambda_star_decreasing_in_eps(self):
        assert lambda_star(1000, 10, 0.2, 1.0) > lambda_star(1000, 10, 0.5, 1.0)

    def test_lambda_star_increasing_in_k(self):
        assert lambda_star(1000, 50, 0.3, 1.0) > lambda_star(1000, 5, 0.3, 1.0)

    def test_lambda_prime_decreasing_in_eps(self):
        assert lambda_prime(1000, 10, 0.2, 1.0) > lambda_prime(1000, 10, 0.5, 1.0)

    def test_lambda_scales_superlinearly_with_n(self):
        assert lambda_star(2000, 10, 0.3, 1.0) > 2 * lambda_star(1000, 10, 0.3, 1.0) * 0.9


class TestEstimateTheta:
    def test_returns_positive_theta_and_keeps_samples(self, ba_graph):
        est = estimate_theta(ba_graph, 10, 0.5, "IC", seed=1)
        assert isinstance(est, ThetaEstimate)
        assert est.theta > 0
        assert len(est.collection) > 0
        assert est.rounds >= 1
        assert est.lb >= 1.0

    def test_theta_grows_as_eps_shrinks(self, ba_graph):
        """The Figure 2 relationship."""
        loose = estimate_theta(ba_graph, 10, 0.6, "IC", seed=1).theta
        tight = estimate_theta(ba_graph, 10, 0.3, "IC", seed=1).theta
        assert tight > loose

    def test_theta_grows_with_k(self, ba_graph):
        small = estimate_theta(ba_graph, 5, 0.5, "IC", seed=1).theta
        large = estimate_theta(ba_graph, 40, 0.5, "IC", seed=1).theta
        assert large > small

    def test_deterministic(self, ba_graph):
        a = estimate_theta(ba_graph, 10, 0.5, "IC", seed=3)
        b = estimate_theta(ba_graph, 10, 0.5, "IC", seed=3)
        assert a.theta == b.theta
        assert a.lb == b.lb

    def test_theta_cap_respected(self, ba_graph):
        est = estimate_theta(ba_graph, 10, 0.5, "IC", seed=1, theta_cap=50)
        assert est.theta <= 50
        assert len(est.collection) <= 50

    def test_trace_records_events(self, ba_graph):
        trace = []
        est = estimate_theta(ba_graph, 10, 0.5, "IC", seed=1, trace=trace)
        kinds = [kind for kind, _ in trace]
        assert kinds == ["sample", "select"] * est.rounds

    def test_coverage_history_recorded(self, ba_graph):
        est = estimate_theta(ba_graph, 10, 0.5, "IC", seed=1)
        assert len(est.coverage_history) == est.rounds
        for theta_x, frac in est.coverage_history:
            assert theta_x > 0
            assert 0.0 <= frac <= 1.0

    def test_works_with_hypergraph_collection(self, ba_graph):
        coll = HypergraphRRRCollection(ba_graph.n)
        est = estimate_theta(ba_graph, 10, 0.5, "IC", seed=1, collection=coll)
        assert est.collection is coll
        # Same θ as the sorted layout (layout cannot change the math).
        sorted_est = estimate_theta(
            ba_graph, 10, 0.5, "IC", seed=1, collection=SortedRRRCollection(ba_graph.n)
        )
        assert est.theta == sorted_est.theta

    def test_lt_model(self, ba_graph_lt):
        est = estimate_theta(ba_graph_lt, 10, 0.5, "LT", seed=1)
        assert est.theta > 0

    def test_invalid_instances_rejected(self, ba_graph):
        with pytest.raises(ValueError):
            estimate_theta(ba_graph, 0, 0.5)
        with pytest.raises(ValueError):
            estimate_theta(ba_graph, ba_graph.n + 1, 0.5)
        with pytest.raises(ValueError):
            estimate_theta(ba_graph, 10, 0.0)
        with pytest.raises(ValueError):
            estimate_theta(ba_graph, 10, 1.0)

    def test_eps_beyond_guarantee_rejected(self, ba_graph):
        """Regression: ``eps >= 1 - 1/e`` makes the ``(1 - 1/e - eps)``
        approximation factor non-positive; such values used to be
        accepted silently."""
        from repro.imm.theta import EPS_UPPER_BOUND

        assert abs(EPS_UPPER_BOUND - (1.0 - 1.0 / math.e)) < 1e-12
        for eps in (EPS_UPPER_BOUND, 0.64, 0.7, 0.99):
            with pytest.raises(ValueError, match="1 - 1/e"):
                estimate_theta(ba_graph, 10, eps)
        # Just inside the bound is still a valid instance.
        est = estimate_theta(ba_graph, 10, 0.63, "IC", seed=1, theta_cap=50)
        assert est.theta > 0

    def test_tiny_graph_rejected(self):
        from repro.graph import path_graph

        with pytest.raises(ValueError):
            estimate_theta(path_graph(1), 1, 0.5)
