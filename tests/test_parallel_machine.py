"""Tests for the machine models (repro.parallel.machine)."""

import dataclasses

import pytest

from repro.parallel import EDISON, LAPTOP, PUMA, MachineSpec


class TestCatalog:
    def test_puma_matches_paper_setup(self):
        # Section 4: two 10-core CPUs, HT disabled, 768 GB.
        assert PUMA.cores_per_node == 20
        assert PUMA.smt == 1
        assert PUMA.mem_per_node == 768 * 1024**3
        assert PUMA.threads_per_node == 20

    def test_edison_matches_paper_setup(self):
        # Section 4: two 12-core CPUs, HT available, 64 GB, Aries.
        assert EDISON.cores_per_node == 24
        assert EDISON.smt == 2
        assert EDISON.mem_per_node == 64 * 1024**3
        assert EDISON.threads_per_node == 48

    def test_edison_interconnect_faster_than_puma(self):
        assert EDISON.alpha < PUMA.alpha
        assert EDISON.beta < PUMA.beta

    def test_edison_cores_slower_than_puma(self):
        # 2.4 GHz vs 2.8 GHz
        assert EDISON.t_edge > PUMA.t_edge


class TestEffectiveThreads:
    def test_physical_cores_count_fully(self):
        assert PUMA.effective_threads(10) == 10
        assert PUMA.effective_threads(20) == 20

    def test_smt_discounted(self):
        # Edison: 24 physical + 24 SMT siblings at 30 %.
        assert EDISON.effective_threads(48) == pytest.approx(24 + 0.3 * 24)

    def test_laptop(self):
        assert LAPTOP.effective_threads(8) == 8
        assert LAPTOP.effective_threads(16) == pytest.approx(8 + 0.3 * 8)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PUMA.effective_threads(0)


class TestValidation:
    def test_bad_cores(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PUMA, cores_per_node=0)

    def test_bad_serial_fraction(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PUMA, serial_fraction=1.0)

    def test_negative_cost(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PUMA, t_edge=-1.0)
