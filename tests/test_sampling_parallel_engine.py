"""Tests for the process-pool sampling engine (repro.sampling.parallel_engine).

The engine's contract has three legs, each exercised here:

* **bit-identity** — for every worker count, chunk size, and start
  method the produced collection, per-sample edge meters, and seed sets
  equal the serial/batched engines' output exactly (counter-addressed
  streams make sample ``j`` schedule-independent);
* **typed failure** — a dead worker raises :class:`WorkerCrashError`
  without hanging the parent, and the shared-memory segments are
  unlinked on every exit path (no ``resource_tracker`` leak warnings);
* **degeneracy** — ``workers=1`` runs fully in-process (no pool, no
  shared memory) and is the same object model as the batched sampler.

Pool-spinning tests carry ``@pytest.mark.parallel`` so the conftest
SIGALRM watchdog converts a wedged pool into a test failure instead of a
hung suite.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest
from multiprocessing import shared_memory as _shm

from repro.imm import imm, imm_sweep
from repro.parallel import imm_mt
from repro.sampling import (
    BatchedRRRSampler,
    ParallelEngineError,
    ParallelSamplingEngine,
    SortedRRRCollection,
    WorkerCrashError,
)
from repro.sampling.parallel_engine import (
    DESCRIPTOR_BYTE_BUDGET,
    PARALLEL_COUNT_THRESHOLD,
    AdaptiveChunkPolicy,
)

THETA = 400


def _reference(graph, model, theta, seed):
    """Batched-engine ground truth: (flat, indptr, per-sample edges)."""
    coll = SortedRRRCollection(graph.n)
    indices = np.arange(theta, dtype=np.int64)
    edges = BatchedRRRSampler(graph, model).sample_into(coll, indices, seed)
    flat, indptr, _ = coll.flattened()
    return flat, indptr, edges


def _drive(engine, graph, theta, seed, chunk_size=None):
    coll = SortedRRRCollection(graph.n)
    indices = np.arange(theta, dtype=np.int64)
    edges = engine.sample_into(coll, indices, seed, chunk_size=chunk_size)
    flat, indptr, _ = coll.flattened()
    return flat, indptr, edges


class TestDegenerateSingleWorker:
    def test_no_pool_no_shared_memory(self, ba_graph):
        with ParallelSamplingEngine(ba_graph, "IC", workers=1) as eng:
            assert eng._pool is None
            assert eng._segments == []

    def test_bitwise_equal_to_batched(self, ba_graph):
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with ParallelSamplingEngine(ba_graph, "IC", workers=1) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)

    def test_count_partitioned_serial_fallback(self, ba_graph):
        flat = np.arange(100, dtype=np.int64) % ba_graph.n
        with ParallelSamplingEngine(ba_graph, "IC", workers=1) as eng:
            counts = eng.count_partitioned(flat, ba_graph.n)
        assert np.array_equal(counts, np.bincount(flat, minlength=ba_graph.n))

    def test_constructor_validation(self, ba_graph):
        with pytest.raises(ValueError):
            ParallelSamplingEngine(ba_graph, "IC", workers=0)
        with pytest.raises(ValueError):
            ParallelSamplingEngine(ba_graph, "IC", workers=1, chunk_size=0)


@pytest.mark.parallel
class TestPoolEquivalence:
    @pytest.fixture(scope="class")
    def ic_engine(self, ba_graph):
        with ParallelSamplingEngine(ba_graph, "IC", workers=2) as eng:
            yield eng

    def test_bitwise_equal_default_chunk(self, ic_engine, ba_graph):
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        got = _drive(ic_engine, ba_graph, THETA, seed=3)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("chunk", [17, 101, THETA])
    def test_bitwise_equal_any_chunk(self, ic_engine, ba_graph, chunk):
        """Chunk size changes the fan-out, never the bits."""
        ref = _reference(ba_graph, "IC", THETA, seed=5)
        got = _drive(ic_engine, ba_graph, THETA, seed=5, chunk_size=chunk)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)

    def test_nonzero_sample_offset(self, ic_engine, ba_graph):
        """Global indices [200, 600) — workers must not renumber from 0."""
        indices = np.arange(200, 600, dtype=np.int64)
        ref_coll = SortedRRRCollection(ba_graph.n)
        BatchedRRRSampler(ba_graph, "IC").sample_into(ref_coll, indices, 7)
        coll = SortedRRRCollection(ba_graph.n)
        ic_engine.sample_into(coll, indices, 7, chunk_size=64)
        a, ai, _ = coll.flattened()
        b, bi, _ = ref_coll.flattened()
        assert np.array_equal(a, b) and np.array_equal(ai, bi)

    def test_empty_batch(self, ic_engine, ba_graph):
        coll = SortedRRRCollection(ba_graph.n)
        edges = ic_engine.sample_into(coll, np.empty(0, dtype=np.int64), 3)
        assert len(edges) == 0 and len(coll) == 0

    def test_count_partitioned_equals_bincount(self, ic_engine, ba_graph):
        rng = np.random.default_rng(11)
        flat = rng.integers(
            0, ba_graph.n, size=PARALLEL_COUNT_THRESHOLD + 17, dtype=np.int64
        )
        counts = ic_engine.count_partitioned(flat, ba_graph.n)
        assert np.array_equal(counts, np.bincount(flat, minlength=ba_graph.n))
        assert counts.dtype == np.int64

    def test_lt_shared_cumweights(self, ba_graph_lt):
        """LT shares one cumulative-weight table; output stays bit-equal."""
        ref = _reference(ba_graph_lt, "LT", THETA, seed=9)
        with ParallelSamplingEngine(ba_graph_lt, "LT", workers=2) as eng:
            got = _drive(eng, ba_graph_lt, THETA, seed=9, chunk_size=77)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)


@pytest.mark.parallel
class TestStartMethods:
    """Bit-identity must hold for explicitly chosen start methods.

    ``fork`` inherits the parent's memory, ``spawn`` re-imports from a
    pristine interpreter — a stream-addressing scheme that leaned on
    inherited state would pass one and fail the other.
    """

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_method_bitwise(self, ba_graph, method):
        ref = _reference(ba_graph, "IC", 120, seed=4)
        with ParallelSamplingEngine(
            ba_graph, "IC", workers=2, start_method=method
        ) as eng:
            got = _drive(eng, ba_graph, 120, seed=4, chunk_size=31)
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)


class TestAdaptiveChunkPolicy:
    """Probe-then-grow sizing is scheduling-only, so these are pure
    unit tests: probe size, fair-share cap, and monotone bounded growth.
    """

    def test_probe_size_and_cap(self):
        pol = AdaptiveChunkPolicy(6400, 2)
        assert pol.initial == pol.size == max(32, 6400 // (16 * 2))
        assert pol.cap == 3200

    def test_tiny_total_clamps_to_cap(self):
        pol = AdaptiveChunkPolicy(10, 4)
        assert pol.cap == 3  # ceil(10 / 4): late planning still spans the pool
        assert pol.size == 3  # the probe floor is clamped down to the cap

    def test_growth_is_monotone_and_bounded(self):
        pol = AdaptiveChunkPolicy(100_000, 2, target_seconds=0.25, growth=2.0)
        start = pol.size
        pol.observe(start, 1e-3)  # blazing fast block wants a huge size...
        assert pol.size == start * 2  # ...but one step grows at most ×2
        grown = pol.size
        pol.observe(grown, 10.0)  # a slow block must never shrink the size
        assert pol.size == grown
        pol.observe(0, 1.0)  # degenerate observations are ignored
        pol.observe(5, 0.0)
        assert pol.size == grown

    def test_never_exceeds_cap(self):
        pol = AdaptiveChunkPolicy(1000, 4)
        for _ in range(20):
            pol.observe(pol.size, 1e-9)
        assert pol.size == pol.cap == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveChunkPolicy(-1, 2)
        with pytest.raises(ValueError):
            AdaptiveChunkPolicy(100, 0)


@pytest.mark.parallel
class TestOutputArena:
    """Shared-memory output arena: growth, lifecycle, descriptor size,
    and the fused-counter merge that rides in the same worker pass.
    """

    def test_tiny_arena_grows_and_stays_bitwise(self, ba_graph):
        """A 4 KiB first segment cannot hold θ samples: the growable-
        segment escape hatch must fire without changing a byte."""
        ref = _reference(ba_graph, "IC", THETA, seed=3)
        with ParallelSamplingEngine(
            ba_graph, "IC", workers=2, arena_bytes=4096
        ) as eng:
            got = _drive(eng, ba_graph, THETA, seed=3, chunk_size=50)
            assert eng.stats.arena_segments >= 2
        for a, b in zip(got, ref):
            assert np.array_equal(a, b)

    def test_arena_unlinked_on_success(self, ba_graph):
        eng = ParallelSamplingEngine(ba_graph, "IC", workers=2)
        coll = SortedRRRCollection(ba_graph.n)
        eng.sample_into(coll, np.arange(200, dtype=np.int64), 3)
        names = [rec["seg"].name for rec in eng._arena]
        assert names  # the run really wrote through an arena segment
        eng.close()
        for name in names:  # unlinked: attaching must fail
            with pytest.raises(FileNotFoundError):
                _shm.SharedMemory(name=name)

    def test_arena_unlinked_on_worker_crash(self, ba_graph):
        """The crash path must unlink every arena segment, including
        growth segments allocated mid-run (4 KiB start forces them)."""
        eng = ParallelSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=50,
            arena_bytes=4096, _crash_block=1,
        )
        names: list[str] = []
        orig = eng._new_arena_segment

        def spy(min_bytes):
            out = orig(min_bytes)
            names.append(eng._arena[-1]["seg"].name)
            return out

        eng._new_arena_segment = spy
        coll = SortedRRRCollection(ba_graph.n)
        with pytest.raises(WorkerCrashError):
            eng.sample_into(coll, np.arange(200, dtype=np.int64), 3)
        assert eng.closed and names
        for name in names:
            with pytest.raises(FileNotFoundError):
                _shm.SharedMemory(name=name)

    def test_descriptor_stays_within_byte_budget(self, ba_graph):
        """Workers return tiny descriptors, not pickled payloads: the
        per-block IPC bytes must stay under the fixed budget."""
        with ParallelSamplingEngine(ba_graph, "IC", workers=2) as eng:
            _drive(eng, ba_graph, THETA, seed=3, chunk_size=50)
            s = eng.stats
            assert s.blocks_landed > 0
            assert s.arena_overflows == 0  # nothing rode back inline
            assert s.ipc_descriptor_bytes / s.blocks_landed <= DESCRIPTOR_BYTE_BUDGET

    def test_fused_merge_equals_bincount(self, ba_graph):
        with ParallelSamplingEngine(ba_graph, "IC", workers=2) as eng:
            coll = SortedRRRCollection(ba_graph.n)
            eng.sample_into(coll, np.arange(THETA, dtype=np.int64), 3)
            flat, _, _ = coll.flattened()
            expect = np.bincount(flat, minlength=ba_graph.n)
            counts = eng.count_partitioned(flat, ba_graph.n)
            assert np.array_equal(counts, expect)
            assert eng.stats.fused_count_merges == 1
            # A pool rebuild wipes the worker counter rows, so the fused
            # path must refuse and fall back — still the exact answer.
            eng.rebuild_pool()
            assert eng.stats.fused_invalidations >= 1
            counts = eng.count_partitioned(flat, ba_graph.n)
            assert np.array_equal(counts, expect)
            assert eng.stats.fused_count_merges == 1  # no second merge


@pytest.mark.parallel
class TestFailureModes:
    def test_worker_crash_raises_typed_error_and_unlinks(self, ba_graph):
        """A worker dying mid-block must not hang or leak segments."""
        eng = ParallelSamplingEngine(
            ba_graph, "IC", workers=2, chunk_size=50, _crash_block=1
        )
        seg_names = [seg.name for seg in eng._segments]
        assert seg_names  # the pool mode really did share memory
        coll = SortedRRRCollection(ba_graph.n)
        with pytest.raises(WorkerCrashError):
            eng.sample_into(coll, np.arange(200, dtype=np.int64), 3)
        assert eng.closed
        for name in seg_names:  # unlinked: attaching must fail
            with pytest.raises(FileNotFoundError):
                _shm.SharedMemory(name=name)

    def test_close_is_idempotent_and_fences(self, ba_graph):
        eng = ParallelSamplingEngine(ba_graph, "IC", workers=2)
        eng.close()
        eng.close()  # second close is a no-op
        assert eng.closed
        with pytest.raises(ParallelEngineError):
            eng.sample_into(
                SortedRRRCollection(ba_graph.n), np.arange(4, dtype=np.int64), 0
            )
        with pytest.raises(ParallelEngineError):
            eng.count_partitioned(np.zeros(4, dtype=np.int64), ba_graph.n)

    def test_no_resource_tracker_warnings(self, tmp_path):
        """End-to-end run in a fresh interpreter leaves stderr clean.

        The parent owns create+unlink and workers never unregister; a
        violation of that discipline surfaces as resource_tracker
        KeyErrors or "leaked shared_memory" warnings at interpreter
        shutdown — exactly what this subprocess scan would catch.
        """
        script = tmp_path / "engine_cleanliness.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.graph import barabasi_albert, uniform_random_weights\n"
            "from repro.sampling import ParallelSamplingEngine, SortedRRRCollection\n"
            "if __name__ == '__main__':\n"
            "    g = uniform_random_weights(barabasi_albert(200, 3, seed=7), seed=3)\n"
            "    # 4 KiB arena: growth segments must be tracked and unlinked too\n"
            "    with ParallelSamplingEngine(g, 'IC', workers=2, arena_bytes=4096) as eng:\n"
            "        coll = SortedRRRCollection(g.n)\n"
            "        eng.sample_into(coll, np.arange(150, dtype=np.int64), 1)\n"
            "    print('OK', len(coll))\n"
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK 150" in proc.stdout
        assert "resource_tracker" not in proc.stderr
        assert "leaked" not in proc.stderr


@pytest.mark.parallel
class TestDriverEquivalence:
    """``workers=w`` must be invisible in every driver's answer."""

    def test_imm_workers_bit_identical(self, ba_graph):
        serial = imm(ba_graph, k=8, eps=0.5, seed=4)
        par = imm(ba_graph, k=8, eps=0.5, seed=4, workers=2)
        assert np.array_equal(serial.seeds, par.seeds)
        assert serial.theta == par.theta
        assert serial.coverage == par.coverage
        assert par.extra["workers"] == 2

    def test_imm_mt_real_parallel_bit_identical(self, ba_graph):
        modeled = imm_mt(ba_graph, k=8, eps=0.5, num_threads=2, seed=3)
        real = imm_mt(
            ba_graph, k=8, eps=0.5, num_threads=2, seed=3, real_parallel=True
        )
        assert np.array_equal(modeled.seeds, real.seeds)
        assert modeled.theta == real.theta
        assert modeled.breakdown == real.breakdown  # modeled time unchanged
        assert real.extra["real_parallel"] is True
        assert real.extra["engine_workers"] == 2
        assert "measured" in real.extra["time_report"]
        assert "modeled(p=2)" in real.extra["time_report"]

    def test_imm_sweep_workers_bit_identical(self, ba_graph):
        serial = imm_sweep(ba_graph, [5, 10], 0.5, seed=1)
        par = imm_sweep(ba_graph, [5, 10], 0.5, seed=1, workers=2)
        for s, p in zip(serial, par):
            assert np.array_equal(s.seeds, p.seeds)
            assert s.theta == p.theta

    def test_driver_validation(self, ba_graph):
        with pytest.raises(ValueError):
            imm(ba_graph, k=5, eps=0.5, seed=1, workers=0)
        with pytest.raises(ValueError):
            imm(ba_graph, k=5, eps=0.5, seed=1, layout="hypergraph", workers=2)
        with pytest.raises(ValueError):
            imm_mt(ba_graph, k=5, eps=0.5, num_threads=2, seed=1, workers=2)
