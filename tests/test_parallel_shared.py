"""Tests for the multithreaded IMM (repro.parallel.shared)."""

import numpy as np
import pytest

from repro.imm import imm
from repro.parallel import EDISON, PUMA, imm_mt


class TestIMMMt:
    def test_seeds_identical_to_serial(self, ba_graph):
        """The thread count must not change the answer (per-sample RNG)."""
        serial = imm(ba_graph, k=8, eps=0.5, seed=3)
        for threads in (1, 4, 20):
            mt = imm_mt(ba_graph, k=8, eps=0.5, num_threads=threads, seed=3)
            np.testing.assert_array_equal(mt.seeds, serial.seeds)
            assert mt.theta == serial.theta

    def test_modeled_time_decreases_with_threads(self, ba_graph):
        times = [
            imm_mt(ba_graph, k=8, eps=0.5, num_threads=t, seed=3).total_time
            for t in (1, 2, 4, 8, 16)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_speedup_sublinear(self, ba_graph):
        t1 = imm_mt(ba_graph, k=8, eps=0.5, num_threads=1, seed=3).total_time
        t20 = imm_mt(ba_graph, k=8, eps=0.5, num_threads=20, seed=3).total_time
        assert 1.0 < t1 / t20 < 20.0

    def test_simulated_flag_and_ranks(self, ba_graph):
        res = imm_mt(ba_graph, k=5, eps=0.5, num_threads=4, seed=1)
        assert res.simulated
        assert res.ranks == 4
        assert res.extra["machine"] == "Puma"

    def test_measured_breakdown_present(self, ba_graph):
        res = imm_mt(ba_graph, k=5, eps=0.5, num_threads=4, seed=1)
        wall = res.extra["measured_breakdown"]
        assert wall.total > 0

    def test_lt_model_cheaper_than_ic(self, ba_graph, ba_graph_lt):
        """Figures 5 vs 6: LT produces much less work."""
        ic = imm_mt(ba_graph, k=8, eps=0.5, model="IC", num_threads=20, seed=3)
        lt = imm_mt(ba_graph_lt, k=8, eps=0.5, model="LT", num_threads=20, seed=3)
        assert lt.counters.edges_examined < ic.counters.edges_examined

    def test_thread_count_validation(self, ba_graph):
        with pytest.raises(ValueError, match="threads per node"):
            imm_mt(ba_graph, k=5, eps=0.5, num_threads=21, machine=PUMA)
        with pytest.raises(ValueError):
            imm_mt(ba_graph, k=5, eps=0.5, num_threads=0)

    def test_edison_allows_hyperthreads(self, ba_graph):
        res = imm_mt(ba_graph, k=5, eps=0.5, num_threads=48, machine=EDISON, seed=1)
        assert res.ranks == 48

    def test_theta_cap_propagates(self, ba_graph):
        res = imm_mt(ba_graph, k=5, eps=0.4, num_threads=4, seed=1, theta_cap=30)
        assert res.num_samples <= 30
