"""Equivalence tests for the cohort sampling engine (repro.sampling.batched).

The determinism contract: sample ``j`` is a pure function of
``(graph, model, seed, j, edge_flip)``, so the cohort engine must emit
**bit-identical** vertex arrays and per-sample edge counts to the serial
:class:`RRRSampler` for every dataset-registry graph, every diffusion
model / edge-flip mode, and every cohort size — including ``B = 1``
(degenerate cohorts) and ``B = θ`` (the whole batch as one cohort).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load, names
from repro.rng import sample_stream
from repro.sampling import (
    BatchedRRRSampler,
    RRRSampler,
    SortedRRRCollection,
    in_edge_cumweights,
    sample_batch,
)

#: Samples drawn per (graph, mode) — enough to exercise multi-cohort
#: chunking at every cohort size below.
COUNT = 48
SEED = 11
#: Cohort sizes of the equivalence sweep; "theta" = the full batch in
#: one cohort (the ISSUE's {1, 7, 64, θ} grid).
COHORTS = (1, 7, 64, "theta")

#: (model, edge_flip) modes under the contract; LT has no hash mode.
MODES = (("IC", "stream"), ("IC", "hash"), ("LT", "stream"))


def _graph_for(name: str, model: str):
    return load(name, model)


def _serial_reference(graph, model: str, edge_flip: str):
    """Generate COUNT samples with the serial engine, one stream each."""
    sampler = RRRSampler(graph, model)
    sets: list[np.ndarray] = []
    edges = np.zeros(COUNT, dtype=np.int64)
    for j in range(COUNT):
        rng = sample_stream(SEED, j)
        root = rng.randint(0, graph.n)
        verts, e = sampler.generate(root, rng, edge_flip=edge_flip)
        sets.append(verts)
        edges[j] = e
    return sets, edges


@pytest.fixture(scope="module")
def serial_refs():
    """Serial reference samples, computed once per (graph, mode)."""
    cache: dict[tuple[str, str, str], tuple] = {}
    for name in names():
        for model, edge_flip in MODES:
            g = _graph_for(name, model)
            cache[(name, model, edge_flip)] = (
                g,
                *_serial_reference(g, model, edge_flip),
            )
    return cache


@pytest.mark.parametrize("name", names())
@pytest.mark.parametrize("model,edge_flip", MODES)
@pytest.mark.parametrize("cohort", COHORTS)
def test_cohort_matches_serial(serial_refs, name, model, edge_flip, cohort):
    graph, ref_sets, ref_edges = serial_refs[(name, model, edge_flip)]
    max_cohort = COUNT if cohort == "theta" else cohort
    sampler = BatchedRRRSampler(graph, model, max_cohort=max_cohort)
    coll = SortedRRRCollection(graph.n)
    indices = np.arange(COUNT, dtype=np.int64)
    per_edges = sampler.sample_into(coll, indices, SEED, edge_flip=edge_flip)
    assert len(coll) == COUNT
    np.testing.assert_array_equal(per_edges, ref_edges)
    for got, want in zip(coll, ref_sets):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("model,edge_flip", MODES)
def test_sampler_reuse_across_calls(serial_refs, model, edge_flip):
    """One sampler instance fed disjoint index ranges reproduces the
    same global sequence (the scratch arrays carry no state across
    cohorts)."""
    name = names()[0]
    graph, ref_sets, ref_edges = serial_refs[(name, model, edge_flip)]
    sampler = BatchedRRRSampler(graph, model, max_cohort=5)
    coll = SortedRRRCollection(graph.n)
    edges_parts = []
    for lo, hi in ((0, 13), (13, 31), (31, COUNT)):
        idx = np.arange(lo, hi, dtype=np.int64)
        edges_parts.append(sampler.sample_into(coll, idx, SEED, edge_flip=edge_flip))
    np.testing.assert_array_equal(np.concatenate(edges_parts), ref_edges)
    for got, want in zip(coll, ref_sets):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("model", ["IC", "LT"])
def test_engine_equality_sample_batch(model):
    """sample_batch's two engines build bit-identical collections and
    report identical work meters."""
    graph = _graph_for("cit-HepTh", model)
    a = SortedRRRCollection(graph.n)
    b = SortedRRRCollection(graph.n)
    ba = sample_batch(graph, model, a, 60, SEED, engine="batched")
    bs = sample_batch(graph, model, b, 60, SEED, engine="serial")
    assert ba.edges_examined == bs.edges_examined
    np.testing.assert_array_equal(ba.per_sample_edges, bs.per_sample_edges)
    fa, ia, sa = a.flattened()
    fb, ib, sb = b.flattened()
    np.testing.assert_array_equal(fa, fb)
    np.testing.assert_array_equal(ia, ib)
    np.testing.assert_array_equal(sa, sb)


def test_lt_rejects_hash_mode():
    graph = _graph_for("cit-HepTh", "LT")
    sampler = BatchedRRRSampler(graph, "LT")
    coll = SortedRRRCollection(graph.n)
    with pytest.raises(ValueError, match="hash"):
        sampler.sample_into(coll, np.arange(3), SEED, edge_flip="hash")


def test_in_edge_cumweights_bit_exact():
    """The shared LT cumulative table equals the per-vertex np.cumsum
    bit for bit on every registry graph."""
    for name in names():
        g = _graph_for(name, "LT")
        cum = in_edge_cumweights(g)
        for v in range(0, g.n, max(1, g.n // 97)):  # stride: spot-check ~100 rows
            lo, hi = int(g.in_indptr[v]), int(g.in_indptr[v + 1])
            if hi > lo:
                np.testing.assert_array_equal(
                    cum[lo:hi], np.cumsum(g.in_probs[lo:hi])
                )
