"""Tests for the graph-partitioned sampler (repro.mpi.partitioned)."""

import numpy as np
import pytest

from repro.mpi import partitioned_rr_batch
from repro.rng import sample_stream
from repro.sampling import RRRSampler


class TestHashFlips:
    def test_hash_mode_deterministic_and_order_free(self, ba_graph):
        sampler = RRRSampler(ba_graph, "IC")
        stream_a = sample_stream(3, 7)
        root = stream_a.randint(0, ba_graph.n)
        a, _ = sampler.generate(root, stream_a, edge_flip="hash")
        stream_b = sample_stream(3, 7)
        stream_b.randint(0, ba_graph.n)
        stream_b.jump(1000)  # stream position is irrelevant in hash mode
        b, _ = sampler.generate(root, stream_b, edge_flip="hash")
        np.testing.assert_array_equal(a, b)

    def test_hash_mode_rejected_for_lt(self, ba_graph_lt):
        sampler = RRRSampler(ba_graph_lt, "LT")
        with pytest.raises(ValueError, match="IC"):
            sampler.generate(0, sample_stream(0, 0), edge_flip="hash")

    def test_unknown_mode_rejected(self, ba_graph):
        with pytest.raises(ValueError, match="edge_flip"):
            RRRSampler(ba_graph, "IC").generate(
                0, sample_stream(0, 0), edge_flip="dice"
            )

    def test_hash_flip_marginals(self):
        """Edge membership frequency still equals the edge probability."""
        from repro.graph import from_edge_list

        g = from_edge_list(2, [(0, 1, 0.4)])
        sampler = RRRSampler(g, "IC")
        hits = 0
        for j in range(3000):
            stream = sample_stream(11, j)
            verts, _ = sampler.generate(1, stream, edge_flip="hash")
            hits += 0 in verts.tolist()
        assert 0.36 < hits / 3000 < 0.44


class TestPartitionedBatch:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_bit_identical_to_serial_hash_mode(self, ba_graph, ranks):
        """The extension's correctness claim: partitioning the graph
        changes nothing about the samples."""
        batch = partitioned_rr_batch(ba_graph, 8, num_ranks=ranks, seed=5)
        sampler = RRRSampler(ba_graph, "IC")
        for j in range(8):
            stream = sample_stream(5, j)
            root = stream.randint(0, ba_graph.n)
            verts, _ = sampler.generate(root, stream, edge_flip="hash")
            np.testing.assert_array_equal(verts, batch.collection[j])

    def test_rank_count_does_not_change_output(self, ba_graph):
        a = partitioned_rr_batch(ba_graph, 6, num_ranks=2, seed=9)
        b = partitioned_rr_batch(ba_graph, 6, num_ranks=4, seed=9)
        for x, y in zip(a.collection, b.collection):
            np.testing.assert_array_equal(x, y)

    def test_communication_metering(self, ba_graph):
        batch = partitioned_rr_batch(ba_graph, 5, num_ranks=3, seed=1)
        # one allreduce per BFS level; at least one level per sample
        assert batch.comm_calls == batch.levels_total
        assert batch.comm_calls >= 5
        assert batch.comm_bytes == batch.comm_calls * ba_graph.n
        assert batch.comm_seconds > 0.0

    def test_single_rank_no_comm_cost(self, ba_graph):
        batch = partitioned_rr_batch(ba_graph, 3, num_ranks=1, seed=1)
        assert batch.comm_seconds == 0.0  # collectives are free at p=1

    def test_replication_tradeoff_visible(self, ba_graph):
        """The future-work lesson: per-sample collectives dwarf the
        replicated design's communication (which is zero during
        sampling)."""
        batch = partitioned_rr_batch(ba_graph, 10, num_ranks=8, seed=2)
        assert batch.comm_bytes > 10 * ba_graph.n  # >= one mask per sample

    def test_validation(self, ba_graph):
        with pytest.raises(ValueError):
            partitioned_rr_batch(ba_graph, -1, num_ranks=2)
        with pytest.raises(ValueError):
            partitioned_rr_batch(ba_graph, 3, num_ranks=0)

    def test_empty_batch(self, ba_graph):
        batch = partitioned_rr_batch(ba_graph, 0, num_ranks=2)
        assert len(batch.collection) == 0
