"""Tests for the fault-injection layer (repro.mpi.faults)."""

import numpy as np
import pytest

from repro.mpi import (
    Allreduce,
    Barrier,
    CorruptReduce,
    FaultPlan,
    OOMKill,
    RankCrash,
    RankFailedError,
    SimulatedOOMError,
    Straggler,
    TransientCommError,
    TransientFault,
    run_spmd,
)


class TestPlanGrammar:
    def test_crash_at_step(self):
        plan = FaultPlan.parse("crash:1@3")
        assert plan.events == (RankCrash(rank=1, at_call=3),)

    def test_crash_at_phase(self):
        plan = FaultPlan.parse("crash:1@phase=Sample")
        assert plan.events == (RankCrash(rank=1, at_phase="Sample"),)

    def test_oom(self):
        (event,) = FaultPlan.parse("oom:2@4").events
        assert isinstance(event, OOMKill)
        assert (event.rank, event.at_call) == (2, 4)

    def test_straggler_with_and_without_factor(self):
        plan = FaultPlan.parse("straggler:2x4.0; straggler:1")
        assert plan.events == (Straggler(2, 4.0), Straggler(1, 2.0))

    def test_transient_with_and_without_count(self):
        plan = FaultPlan.parse("transient:@5, transient:@6x2")
        assert plan.events == (TransientFault(5, 1), TransientFault(6, 2))

    def test_corrupt(self):
        plan = FaultPlan.parse("corrupt:0@1")
        assert plan.events == (CorruptReduce(0, 1),)

    def test_mixed_separators_and_whitespace(self):
        plan = FaultPlan.parse(" crash:0@1 ; straggler:1x3 , transient:@2 ")
        assert len(plan.events) == 3

    @pytest.mark.parametrize(
        "bad",
        ["crash:1", "crash@3", "oom:1@phase=Sample", "wobble:1@2", "crash:x@3"],
    )
    def test_bad_tokens_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_describe_round_trips_the_intent(self):
        text = FaultPlan.parse("crash:1@3;straggler:0x4").describe()
        assert "crash rank 1 at step 3" in text
        assert "straggler rank 0 x4" in text
        assert FaultPlan().describe() == "no faults"


class TestEventValidation:
    def test_crash_needs_exactly_one_address(self):
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            RankCrash(rank=0, at_call=1, at_phase="Sample")

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RankCrash(rank=0, at_call=-1)

    def test_straggler_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Straggler(0, 0.5)

    def test_transient_needs_positive_failures(self):
        with pytest.raises(ValueError, match=">= 1"):
            TransientFault(0, 0)

    def test_plan_rejects_non_events(self):
        with pytest.raises(TypeError, match="not a fault event"):
            FaultPlan(("crash:0@1",))


class TestInjectorSemantics:
    def test_crash_is_one_shot(self):
        inj = FaultPlan((RankCrash(rank=1, at_call=0),)).injector()
        with pytest.raises(RankFailedError) as exc:
            inj.check_rank(1)
        assert (exc.value.rank, exc.value.step) == (1, 0)
        inj.check_rank(1)  # consumed: must not re-fire

    def test_crash_fires_at_or_after_step(self):
        # A rank that is silent at the addressed step dies at its next
        # collective, mirroring "node died somewhere in this window".
        inj = FaultPlan((RankCrash(rank=0, at_call=2),)).injector()
        inj.check_rank(0)
        inj.advance_step()
        inj.check_rank(0)
        inj.advance_step()
        with pytest.raises(RankFailedError):
            inj.check_rank(0)

    def test_phase_crash_needs_matching_nonempty_phase(self):
        inj = FaultPlan((RankCrash(rank=0, at_phase="Sample"),)).injector()
        inj.check_rank(0, phase="")
        inj.check_rank(0, phase="EstimateTheta")
        with pytest.raises(RankFailedError) as exc:
            inj.check_rank(0, phase="Sample")
        assert exc.value.phase == "Sample"

    def test_other_ranks_unaffected(self):
        inj = FaultPlan((RankCrash(rank=1, at_call=0),)).injector()
        inj.check_rank(0)
        inj.check_rank(2)

    def test_transient_countdown(self):
        inj = FaultPlan((TransientFault(0, failures=2),)).injector()
        assert inj.transient_failure()
        assert inj.transient_failure()
        assert not inj.transient_failure()
        inj.advance_step()
        assert not inj.transient_failure()

    def test_corrupt_copies_rather_than_mutates(self):
        inj = FaultPlan((CorruptReduce(0, 0, delta=7),)).injector()
        original = np.array([1, 2, 3], dtype=np.int64)
        bad = inj.corrupt_buffer(0, original)
        assert bad.tolist() == [1, 2, 10]
        assert original.tolist() == [1, 2, 3]
        # one-shot: the next call passes through untouched
        assert inj.corrupt_buffer(0, original) is original

    def test_slowdown_compounds(self):
        plan = FaultPlan((Straggler(1, 2.0), Straggler(1, 3.0)))
        inj = plan.injector()
        assert inj.slowdown(1) == pytest.approx(6.0)
        assert inj.slowdown(0) == 1.0


class TestRunSpmdWithFaults:
    @staticmethod
    def _program(rank, size):
        a = yield Allreduce(np.array([rank], dtype=np.int64))
        b = yield Allreduce(a)
        yield Barrier()
        return int(b[0])

    def test_crash_surfaces_typed_error(self):
        with pytest.raises(RankFailedError, match="rank 1 failed at collective step 1"):
            run_spmd(3, self._program, faults=FaultPlan.parse("crash:1@1"))

    def test_oom_surfaces_typed_error(self):
        with pytest.raises(SimulatedOOMError, match="rank 2"):
            run_spmd(3, self._program, faults=FaultPlan.parse("oom:2@0"))

    def test_transient_aborts_plain_runtime(self):
        # run_spmd has no retry loop: the first transient failure kills it.
        with pytest.raises(TransientCommError):
            run_spmd(3, self._program, faults=FaultPlan.parse("transient:@1"))

    def test_corruption_changes_the_result(self):
        clean, _ = run_spmd(3, self._program)
        dirty, _ = run_spmd(3, self._program, faults=FaultPlan.parse("corrupt:0@0"))
        assert clean != dirty

    def test_empty_plan_is_inert(self):
        clean, _ = run_spmd(3, self._program)
        planned, _ = run_spmd(3, self._program, faults=FaultPlan())
        assert clean == planned


class TestSwitchOutage:
    """``switch:<lo>-<hi>@<step>``: a contiguous rank group dies at once."""

    def test_grammar(self):
        from repro.mpi import SwitchOutage

        plan = FaultPlan.parse("switch:1-3@2")
        assert plan.events == (SwitchOutage(lo=1, hi=3, at_call=2),)
        assert plan.events[0].ranks == (1, 2, 3)

    def test_single_rank_group(self):
        from repro.mpi import SwitchOutage

        (event,) = FaultPlan.parse("switch:2-2@0").events
        assert event.ranks == (2,)

    @pytest.mark.parametrize(
        "bad", ["switch:1-3", "switch:3-1@2", "switch:1@2", "switch:a-b@2"]
    )
    def test_bad_tokens_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_describe(self):
        assert "switch outage: ranks 1-3 die at step 2" in FaultPlan.parse(
            "switch:1-3@2"
        ).describe()

    def test_whole_group_fails_once(self):
        inj = FaultPlan.parse("switch:1-2@0").injector()
        for rank in (1, 2):
            with pytest.raises(RankFailedError):
                inj.check_rank(rank)
        # one-shot per member: no re-fire, and rank 0 is never touched
        inj.check_rank(0)
        inj.check_rank(1)
        inj.check_rank(2)

    def test_fires_at_or_after_step(self):
        inj = FaultPlan.parse("switch:0-1@2").injector()
        inj.check_rank(0)  # step 0: too early
        inj.step = 2
        with pytest.raises(RankFailedError) as exc:
            inj.check_rank(1)
        assert exc.value.step == 2

    def test_group_crash_aborts_plain_runtime(self):
        with pytest.raises(RankFailedError):
            run_spmd(
                4,
                TestRunSpmdWithFaults._program,
                faults=FaultPlan.parse("switch:1-2@1"),
            )
