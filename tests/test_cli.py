"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def edgelist_file(tmp_path):
    path = tmp_path / "g.txt"
    lines = ["# tiny test graph"]
    # a denser ring so IMM has something to chew on
    n = 40
    for i in range(n):
        lines.append(f"{i} {(i + 1) % n} 0.4")
        lines.append(f"{i} {(i + 2) % n} 0.3")
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_dataset_and_edgelist_exclusive(self, edgelist_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "cit-HepTh", "--edgelist", edgelist_file]
            )


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cit-HepTh" in out and "com-Orkut" in out

    def test_run_serial_on_edgelist(self, edgelist_file, capsys):
        code = main(
            [
                "run",
                "--edgelist",
                edgelist_file,
                "--k",
                "3",
                "--eps",
                "0.5",
                "--theta-cap",
                "500",
                "--evaluate",
                "--trials",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seeds:" in out
        assert "expected spread" in out

    def test_run_mt_variant(self, edgelist_file, capsys):
        code = main(
            [
                "run",
                "--edgelist",
                edgelist_file,
                "--variant",
                "mt",
                "--threads",
                "4",
                "--k",
                "3",
                "--theta-cap",
                "500",
            ]
        )
        assert code == 0
        assert "(simulated)" in capsys.readouterr().out

    def test_run_dist_variant(self, edgelist_file, capsys):
        code = main(
            [
                "run",
                "--edgelist",
                edgelist_file,
                "--variant",
                "dist",
                "--nodes",
                "2",
                "--k",
                "3",
                "--theta-cap",
                "500",
            ]
        )
        assert code == 0

    def test_run_lt_model(self, edgelist_file):
        assert (
            main(
                [
                    "run",
                    "--edgelist",
                    edgelist_file,
                    "--model",
                    "LT",
                    "--k",
                    "2",
                    "--theta-cap",
                    "500",
                ]
            )
            == 0
        )

    def test_run_with_profile(self, edgelist_file, capsys):
        code = main(
            [
                "run",
                "--edgelist",
                edgelist_file,
                "--k",
                "2",
                "--theta-cap",
                "200",
                "--profile",
            ]
        )
        assert code == 0
        assert "cumulative" in capsys.readouterr().out

    def test_spread_command(self, edgelist_file, capsys):
        code = main(
            [
                "spread",
                "--edgelist",
                edgelist_file,
                "--seeds",
                "0,5,10",
                "--trials",
                "50",
            ]
        )
        assert code == 0
        assert "expected spread of 3 seeds" in capsys.readouterr().out


class TestNewSubcommands:
    def test_sweep_command(self, edgelist_file, capsys):
        code = main(
            [
                "sweep",
                "--edgelist",
                edgelist_file,
                "--ks",
                "2,4",
                "--theta-cap",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reused" in out

    def test_community_command(self, edgelist_file, capsys):
        code = main(
            [
                "community",
                "--edgelist",
                edgelist_file,
                "--k",
                "3",
                "--theta-cap",
                "400",
            ]
        )
        assert code == 0
        assert "communities used" in capsys.readouterr().out

    def test_validate_quick_single_dataset(self, capsys):
        code = main(["validate", "--quick", "--dataset", "cit-HepTh"])
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalence oracle (quick)" in out
        assert "OK" in out

    def test_validate_mutate_only(self, capsys):
        code = main(["validate", "--mutate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mutants killed" in out
        assert "SURVIVED" not in out

    def test_validate_quick_and_full_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "--quick", "--full"])

    def test_validate_mutate_smoke(self, capsys):
        code = main(["validate", "--mutate-smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke subset" in out
        assert "SURVIVED" not in out

    def test_validate_shard(self, capsys):
        code = main(
            ["validate", "--quick", "--dataset", "cit-HepTh",
             "--no-faults", "--shard", "2/2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard 2/2" in out
        assert "OK" in out

    def test_validate_bad_shard(self):
        with pytest.raises(SystemExit):
            main(["validate", "--quick", "--shard", "nope"])

    def test_dist_fault_plan_and_policy(self, capsys):
        code = main(
            ["dist", "--dataset", "cit-HepTh", "--k", "3", "--theta-cap",
             "150", "--nodes", "3", "--fault-plan", "crash:1@3",
             "--policy", "respawn"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy: respawn" in out
        assert "respawns=1" in out

    def test_dist_checkpoint_round_trip(self, tmp_path, capsys):
        ck = tmp_path / "trail.json"
        base = ["dist", "--dataset", "cit-HepTh", "--k", "3",
                "--theta-cap", "150", "--nodes", "2"]
        assert main(base + ["--checkpoint-out", str(ck)]) == 0
        first = capsys.readouterr().out
        assert "checkpoint(s)" in first
        assert main(base + ["--resume-from", str(ck)]) == 0
        second = capsys.readouterr().out
        seeds = [l for l in first.splitlines() if l.startswith("seeds:")]
        assert seeds and seeds[0] in second

    def test_dist_degraded_shrink(self, capsys):
        code = main(
            ["dist", "--dataset", "cit-HepTh", "--k", "3", "--theta-cap",
             "150", "--nodes", "3", "--fault-plan",
             "crash:2@phase=SelectSeeds", "--policy", "shrink"]
        )
        assert code == 0
        assert "DEGRADED" in capsys.readouterr().out

    def test_metis_input(self, tmp_path, capsys):
        path = tmp_path / "g.metis"
        # a 4-cycle, both directions
        path.write_text("4 4\n2 4\n1 3\n2 4\n1 3\n")
        code = main(
            ["run", "--metis", str(path), "--k", "2", "--theta-cap", "200"]
        )
        assert code == 0

    def test_mtx_input(self, tmp_path, capsys):
        path = tmp_path / "g.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "5 5 4\n2 1 0.5\n3 2 0.5\n4 3 0.5\n5 4 0.5\n"
        )
        code = main(
            ["run", "--mtx", str(path), "--k", "2", "--theta-cap", "200"]
        )
        assert code == 0
