"""Cluster tests (repro.serving.cluster + satellite surfaces).

The contract under test: every answer the replicated router returns —
routed, failed-over, or hedged — is either bit-identical to a fresh
``imm()`` run or a typed degraded/rejected result; extension traffic
lands on exactly one writer replica; healed replicas return to the
rotation; shutdown is clean and typed.  The chaos test at the bottom
throws crash + partition + straggler at one router at once.

Also covered here: the typed fault-plan parse errors, the shared EWMA
helper, and the ``IndexCache`` pin/identity edge cases the router's
routing memo leans on.
"""

import asyncio
import shutil
import time

import numpy as np
import pytest

from repro.imm import imm
from repro.mpi.faults import (
    FaultPlan,
    FaultPlanParseError,
    Partition,
    ReplicaCrash,
    ReplicaSlow,
)
from repro.serving import (
    AdmissionRejected,
    ClusterRouter,
    ClusterUnavailable,
    DegradedServingResult,
    FrozenRRRIndex,
    IndexCache,
    QueryDeadlineExceeded,
    ServingFrontend,
    ewma_update,
    freeze_index,
    shrink_epsilon,
)

K = 5
EPS = 0.5
SEED = 3
CAP = 300

run = asyncio.run


@pytest.fixture(scope="module")
def frozen(ba_graph, tmp_path_factory):
    """One capped frozen index shared by the read-only tests."""
    out = tmp_path_factory.mktemp("cluster") / "index"
    index, res = freeze_index(
        ba_graph, K, EPS, "IC", SEED, theta_cap=CAP, out_dir=out
    )
    index.close()
    return out, res


@pytest.fixture(scope="module")
def uncapped_src(ba_graph, tmp_path_factory):
    """Pristine uncapped index: tighter-eps queries go out-of-prefix."""
    out = tmp_path_factory.mktemp("cluster-uncapped") / "index"
    index, _ = freeze_index(
        ba_graph, K, EPS, "IC", SEED, theta_cap=None, out_dir=out
    )
    frozen_m = index.num_samples
    manifest = dict(index.manifest)
    index.close()
    return out, frozen_m, manifest


@pytest.fixture()
def uncapped(uncapped_src, tmp_path):
    """A throwaway copy — extension tests may grow it on disk."""
    src, frozen_m, manifest = uncapped_src
    dst = tmp_path / "index"
    shutil.copytree(src, dst)
    return dst, frozen_m, manifest


def _primary(path, n=2):
    """The rendezvous primary a router of ``n`` replicas elects for
    ``path`` (deterministic, so a throwaway router suffices)."""
    async def body():
        async with ClusterRouter(num_replicas=n) as cr:
            return cr._order(path)[0].idx
    return run(body())


class TestFaultPlanParsing:
    def test_cluster_tokens_parse(self):
        plan = FaultPlan.parse(
            "replicacrash:1@3;replicaslow:0x0.25;partition:2@5x4"
        )
        assert plan.events == (
            ReplicaCrash(1, 3), ReplicaSlow(0, 0.25), Partition(2, 5, 4),
        )

    def test_cluster_token_defaults(self):
        plan = FaultPlan.parse("replicaslow:2;partition:0@1")
        assert plan.events == (ReplicaSlow(2, 0.05), Partition(0, 1, 1))

    def test_describe_names_cluster_events(self):
        plan = FaultPlan.parse("replicacrash:1@3;partition:2@5x4")
        text = plan.describe()
        assert "replica 1 dies at query 3" in text
        assert "queries 5" in text or "query 5" in text

    def test_parse_error_is_typed_and_names_the_token(self):
        with pytest.raises(FaultPlanParseError) as ei:
            FaultPlan.parse("replicacrash:1")
        assert ei.value.token == "replicacrash:1"
        assert "replicacrash:1" in str(ei.value)
        assert isinstance(ei.value, ValueError)  # old callers keep working

    @pytest.mark.parametrize(
        "token",
        [
            "replicacrash:x@y",      # non-integer fields
            "replicacrash:-1@0",     # negative replica
            "replicaslow:0x-1",      # non-positive straggle
            "replicaslow:0xfast",    # non-numeric straggle
            "partition:0@1x0",       # empty window
            "partition:0",           # missing @query
            "quorumloss:1@2",        # unknown kind
            "replicacrash",          # no payload at all
        ],
    )
    def test_malformed_specs_raise_typed(self, token):
        with pytest.raises(FaultPlanParseError) as ei:
            FaultPlan.parse(token)
        assert ei.value.token == token
        assert ei.value.detail

    def test_legacy_tokens_also_raise_typed(self):
        # The pre-cluster grammar now reports through the same type.
        with pytest.raises(FaultPlanParseError) as ei:
            FaultPlan.parse("crash:one@2")
        assert ei.value.token == "crash:one@2"
        assert FaultPlan.parse("crash:1@2").events  # and still parses


class TestEwmaUpdate:
    def test_first_sample_passes_through(self):
        assert ewma_update(None, 5.0) == 5.0

    def test_default_alpha_smooths(self):
        assert ewma_update(10.0, 0.0) == pytest.approx(8.0)
        assert ewma_update(0.0, 10.0) == pytest.approx(2.0)

    def test_custom_alpha(self):
        assert ewma_update(10.0, 0.0, alpha=0.5) == pytest.approx(5.0)

    def test_frontend_uses_the_shared_helper(self, frozen):
        out, _ = frozen

        async def body():
            async with ServingFrontend() as fe:
                await fe.what_if(out, 1)
                return fe._lat_ewma

        assert run(body()) is not None  # fed by ewma_update in _release


class TestIndexCachePinEdgeCases:
    def test_pin_outlives_eviction(self, frozen, uncapped):
        capped, res = frozen
        other, _, _ = uncapped
        cache = IndexCache(capacity=1)
        try:
            with cache.lease(capped) as eng:
                release = cache.pin(eng)
            with cache.lease(other):  # over capacity, but the pin shields
                pass
            assert len(cache) == 2  # transiently over: the pin held it
            # The pinned engine's maps must still be readable.
            assert np.array_equal(eng.top_k(K).seeds, res.seeds)
            release()
            # Once unpinned, the next eviction pass may claim it: force a
            # fresh miss by re-keying the other index (amend changes its
            # identity), which retires the stale entry and evicts LRU.
            idx = FrozenRRRIndex.open(other)
            idx.amend(theta_cap=CAP - 50)
            idx.close()
            with cache.lease(other):
                pass
            assert len(cache) == 1  # the formerly-pinned entry is gone
        finally:
            cache.close()

    def test_identity_changes_after_rekey(self, uncapped):
        path, _, _ = uncapped
        cache = IndexCache()
        try:
            before = cache.identity(path)
            idx = FrozenRRRIndex.open(path)
            idx.amend(theta_cap=CAP)
            idx.close()
            after = cache.identity(path)
            assert before != after  # theta_cap is part of the key
            assert cache.identity(path) == after  # and it is stable
        finally:
            cache.close()

    def test_pins_resolved_on_close(self, frozen):
        capped, _ = frozen
        cache = IndexCache()
        with cache.lease(capped) as eng:
            release = cache.pin(eng)
        cache.close()  # force-closes everything, pinned or not
        release()  # late release of a force-closed entry must not raise
        assert len(cache) == 0

    def test_pin_of_foreign_engine_is_noop(self, frozen):
        capped, _ = frozen
        cache = IndexCache()
        try:
            with cache.lease(capped):
                pass
            index = FrozenRRRIndex.open(capped)
            try:
                from repro.serving import InfluenceQueryEngine

                foreign = InfluenceQueryEngine(index, verify=False)
                release = cache.pin(foreign)  # engine the cache never built
                release()
            finally:
                index.close()
        finally:
            cache.close()


class TestRouting:
    def test_zero_fault_batch_is_bit_identical(self, frozen):
        out, res = frozen

        async def body():
            # hedge=False: a spontaneous hedge (EWMA delay shrinks after
            # the first fast query) would dispatch a duplicate to the
            # secondary and break the all-on-primary accounting below.
            async with ClusterRouter(num_replicas=2, hedge=False) as cr:
                primary = cr._order(out)[0].idx
                batch = await asyncio.gather(
                    cr.top_k(out),
                    cr.top_k(out),
                    cr.what_if(out, K, forced=(int(res.seeds[-1]),)),
                    cr.marginal_gain(out, res.seeds[:2]),
                )
                return batch, cr.stats, cr.replica_stats(), primary

        batch, stats, reps, primary = run(body())
        for r in batch[:2]:
            assert not r.degraded
            assert np.array_equal(r.seeds, res.seeds)
            assert r.theta == res.theta
        assert int(batch[2].seeds[0]) == int(res.seeds[-1])
        assert batch[3].num_samples == res.theta
        assert stats.failovers == 0 and stats.unavailable == 0
        dispatched = {r["replica"]: r["dispatched"] for r in reps}
        assert dispatched[primary] == len(batch)  # all on the primary
        assert sum(dispatched.values()) == len(batch)

    def test_rendezvous_order_is_deterministic(self, frozen):
        out, _ = frozen

        async def order():
            async with ClusterRouter(num_replicas=4) as cr:
                first = [rep.idx for rep in cr._order(out)]
                second = [rep.idx for rep in cr._order(out)]
                return first, second

        a1, a2 = run(order())
        b1, _ = run(order())
        assert a1 == a2 == b1  # stable within and across routers
        assert sorted(a1) == [0, 1, 2, 3]

    def test_post_close_queries_are_refused_typed(self, frozen):
        out, _ = frozen

        async def body():
            cr = ClusterRouter(num_replicas=2)
            await cr.top_k(out)
            await cr.close()
            with pytest.raises(AdmissionRejected) as ei:
                await cr.top_k(out)
            return ei.value.reason

        assert run(body()) == "shutdown"

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="num_replicas"):
            ClusterRouter(num_replicas=0)
        with pytest.raises(ValueError, match="failover_retries"):
            ClusterRouter(failover_retries=-1)


class TestFailover:
    def test_crashed_primary_fails_over_bit_identically(self, frozen):
        out, res = frozen
        primary = _primary(out)

        async def body():
            async with ClusterRouter(
                num_replicas=2,
                fault_plan=f"replicacrash:{primary}@0",
                backoff_base=0.001,
            ) as cr:
                r = await cr.top_k(out)
                return r, cr.stats, await cr.probe(out)

        r, stats, probe = run(body())
        assert not r.degraded
        assert np.array_equal(r.seeds, res.seeds)
        assert stats.failovers >= 1
        assert stats.replica_failures >= 1
        assert probe[primary] == "ReplicaUnreachableError"
        assert probe[1 - primary] == "ok"

    def test_partition_heals_and_primary_returns(self, frozen):
        out, res = frozen
        primary = _primary(out)

        async def body():
            # hedge=False: a hedge racing the healed primary's probe
            # dispatch can cancel it, leaving the threshold-1 breaker
            # half-open — a race, not the heal behavior under test.
            async with ClusterRouter(
                num_replicas=2,
                hedge=False,
                fault_plan=f"partition:{primary}@0",
                replica_breaker_threshold=1,
                replica_breaker_cooldown=0.05,
                backoff_base=0.001,
            ) as cr:
                r0 = await cr.top_k(out)  # window open: fails over
                failovers = cr.stats.failovers
                await asyncio.sleep(0.06)  # breaker cooldown expires
                r1 = await cr.top_k(out, K - 1)
                return r0, r1, failovers, cr.replica_stats()

        r0, r1, failovers, reps = run(body())
        assert np.array_equal(r0.seeds, res.seeds) and not r0.degraded
        assert not r1.degraded
        assert failovers >= 1
        healed = {r["replica"]: r for r in reps}
        assert healed[primary]["dispatched"] >= 1  # routed back after heal
        assert healed[primary]["breaker_state"] == "closed"


class TestHedging:
    def test_straggling_primary_loses_to_the_hedge(self, frozen):
        out, res = frozen
        primary = _primary(out)

        async def body():
            async with ClusterRouter(
                num_replicas=2,
                fault_plan=f"replicaslow:{primary}x0.3",
                hedge_after=0.01,
            ) as cr:
                t0 = time.perf_counter()
                r = await cr.top_k(out)
                return r, time.perf_counter() - t0, cr.stats

        r, dt, stats = run(body())
        assert not r.degraded
        assert np.array_equal(r.seeds, res.seeds)
        assert stats.hedges >= 1
        assert stats.hedge_wins >= 1
        assert dt < 0.3  # the straggler's sleep never reached the caller

    def test_hedging_can_be_disabled(self, frozen):
        out, res = frozen

        async def body():
            async with ClusterRouter(num_replicas=2, hedge=False,
                                     hedge_after=1e-6) as cr:
                r = await cr.top_k(out)
                return r, cr.stats.hedges

        r, hedges = run(body())
        assert np.array_equal(r.seeds, res.seeds)
        assert hedges == 0

    def test_writes_are_never_hedged_single_writer(self, ba_graph, uncapped):
        path, _, _ = uncapped
        tight = EPS * 0.9
        fresh = imm(ba_graph, K, tight, "IC", seed=SEED, layout="sorted")

        async def body():
            async with ClusterRouter(num_replicas=3, hedge_after=1e-6) as cr:
                r = await cr.tighten(path, tight, graph=ba_graph)
                attempts = sum(
                    fe.stats.extension_attempts for fe in cr.frontends()
                )
                return r, attempts, cr.stats

        r, attempts, stats = run(body())
        assert np.array_equal(r.seeds, fresh.seeds)
        assert not r.degraded
        assert attempts == 1  # exactly one writer cluster-wide
        assert stats.hedges == 0


class TestUnavailable:
    def test_all_down_selection_degrades_honestly(self, frozen, ba_graph):
        out, res = frozen
        mf = dict(FrozenRRRIndex.open(out).manifest)
        # close the probe handle promptly
        l = float(mf["l"])
        lb = float(mf["lb"]) if mf.get("lb") is not None else 1.0
        frozen_m = int(mf["num_samples"])

        async def body():
            async with ClusterRouter(
                num_replicas=2,
                fault_plan="replicacrash:0@0;replicacrash:1@0",
                replica_breaker_threshold=1,
            ) as cr:
                deg = await cr.top_k(out)
                with pytest.raises(ClusterUnavailable) as ei:
                    await cr.what_if(out, K)
                return deg, ei.value, cr.stats

        deg, exc, stats = run(body())
        assert isinstance(deg, DegradedServingResult)
        assert deg.degraded_reason == "cluster-unavailable"
        assert deg.theta_effective == frozen_m
        want = shrink_epsilon(ba_graph.n, K, l, frozen_m, lb)
        assert deg.epsilon_effective == pytest.approx(want, abs=1e-12)
        assert np.array_equal(deg.seeds, res.seeds)  # stale == frozen prefix
        assert exc.retry_after > 0
        assert exc.replicas == 2
        assert stats.unavailable >= 1 and stats.degraded_local >= 1

    def test_all_down_without_degradation_is_typed(self, frozen):
        out, _ = frozen

        async def body():
            async with ClusterRouter(
                num_replicas=2,
                fault_plan="replicacrash:0@0;replicacrash:1@0",
                replica_breaker_threshold=1,
                degrade_on_unavailable=False,
            ) as cr:
                with pytest.raises(ClusterUnavailable) as ei:
                    await cr.top_k(out)
                return ei.value

        exc = run(body())
        assert exc.reason == "no-healthy-replica"
        assert exc.retry_after > 0

    def test_writer_down_write_degrades_readonly(self, ba_graph, uncapped):
        path, frozen_m, _ = uncapped
        primary = _primary(path)

        async def body():
            async with ClusterRouter(
                num_replicas=2,
                fault_plan=f"replicacrash:{primary}@0",
                backoff_base=0.001,
            ) as cr:
                r = await cr.tighten(path, EPS * 0.9, graph=ba_graph)
                return r, cr.stats

        r, stats = run(body())
        # No second writer is minted: the survivor answers read-only from
        # the frozen prefix, degraded and honest about it.
        assert isinstance(r, DegradedServingResult)
        assert r.degraded_reason == "no-graph"
        assert r.theta_effective == frozen_m
        assert stats.writer_fallbacks >= 1


class TestChaos:
    def test_mixed_traffic_under_crash_partition_straggle(
        self, ba_graph, frozen
    ):
        """The acceptance chaos axis: concurrent mixed queries while one
        replica crashes, one partitions-then-heals, and one straggles.
        Every completed answer must be bit-identical to a fresh ``imm()``
        or typed degraded/rejected; the healed replica must return to
        rotation; shutdown must be clean and typed."""
        out, res = frozen
        res2 = imm(
            ba_graph, K - 2, EPS, "IC", seed=SEED, layout="sorted",
            theta_cap=CAP,
        )

        async def body():
            cr = ClusterRouter(
                num_replicas=3,
                concurrency=2,
                fault_plan=(
                    "replicacrash:0@4;partition:1@2x3;replicaslow:2x0.01"
                ),
                replica_breaker_threshold=1,
                replica_breaker_cooldown=0.05,
                backoff_base=0.001,
                hedge_after=0.02,
            )
            kinds = ("top_k", "alt_k", "what_if", "marginal")
            coros = []
            for i in range(24):
                kind = kinds[i % len(kinds)]
                if kind == "top_k":
                    coros.append(cr.top_k(out))
                elif kind == "alt_k":
                    coros.append(cr.top_k(out, K - 2))
                elif kind == "what_if":
                    coros.append(
                        cr.what_if(out, K, forced=(int(res.seeds[0]),))
                    )
                else:
                    coros.append(cr.marginal_gain(out, res.seeds[:2]))
            results = await asyncio.gather(*coros, return_exceptions=True)
            await asyncio.sleep(0.08)  # partition window + cooldown elapse
            probe = await cr.probe(out)
            late = await cr.top_k(out)
            stats = cr.stats
            await cr.close()
            with pytest.raises(AdmissionRejected) as ei:
                await cr.top_k(out)
            inflight = [fe._inflight for fe in cr.frontends()]
            return results, probe, late, stats, ei.value.reason, inflight

        results, probe, late, stats, reason, inflight = run(body())

        # Contract: bit-identical, typed-degraded, or typed-rejected.
        kinds = ("top_k", "alt_k", "what_if", "marginal")
        completed = 0
        for i, r in enumerate(results):
            kind = kinds[i % len(kinds)]
            if isinstance(r, BaseException):
                assert isinstance(
                    r,
                    (AdmissionRejected, QueryDeadlineExceeded,
                     ClusterUnavailable),
                ), r
                continue
            completed += 1
            if isinstance(r, DegradedServingResult):
                assert r.degraded_reason
                continue
            if kind == "top_k":
                assert np.array_equal(r.seeds, res.seeds), i
                assert r.theta == res.theta
            elif kind == "alt_k":
                assert np.array_equal(r.seeds, res2.seeds), i
            elif kind == "what_if":
                assert int(r.seeds[0]) == int(res.seeds[0])
            else:
                assert r.num_samples == res.theta
        assert completed >= 1  # two healthy replicas: traffic flowed

        # The faults engaged and the healed replica is back in rotation.
        assert stats.replica_failures >= 1
        assert probe[0] == "ReplicaUnreachableError"  # crash is permanent
        assert probe[1] == "ok"  # partition healed
        assert probe[2] == "ok"  # straggler is slow, not dead
        assert not late.degraded
        assert np.array_equal(late.seeds, res.seeds)

        # Clean shutdown: nothing in flight, further traffic typed away.
        assert reason == "shutdown"
        assert all(n == 0 for n in inflight)
