"""Failure-injection tests: how the runtime behaves when things break.

The policy suites at the bottom pin the end-to-end recovery contract of
``imm_dist``: retry exhaustion surfaces the typed error, respawn is
bit-exact, shrink degrades honestly and conserves the work meters.
"""

import numpy as np
import pytest

from repro.mpi import (
    Allreduce,
    RankFailedError,
    SimulatedOOMError,
    TransientCommError,
    imm_dist,
    run_spmd,
)
from repro.sampling import SortedRRRCollection


class TestSpmdFailurePropagation:
    def test_rank_exception_aborts_job(self):
        """A raising rank kills the whole SPMD run (like mpirun abort),
        not just its own generator."""

        def program(rank, size):
            if rank == 2:
                raise RuntimeError("rank 2 exploded")
            yield Allreduce(np.array([rank]))
            return rank

        with pytest.raises(RuntimeError, match="rank 2 exploded"):
            run_spmd(4, program)

    def test_exception_after_collective(self):
        def program(rank, size):
            total = yield Allreduce(np.array([1]))
            if rank == 0 and int(total[0]) == 3:
                raise ValueError("post-collective failure")
            return rank

        with pytest.raises(ValueError, match="post-collective"):
            run_spmd(3, program)

    def test_oom_aborts_distributed_run_cleanly(self, ba_graph):
        """A simulated OOM inside one rank's sampling surfaces as the
        typed error (the experiment harness records a missing point)."""
        with pytest.raises(SimulatedOOMError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=4, seed=1, mem_per_node=10)

    def test_run_usable_after_failure(self, ba_graph):
        """A failed run leaves no residue: the same call with a sane
        limit succeeds afterwards (no global state)."""
        with pytest.raises(SimulatedOOMError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, seed=1, mem_per_node=10)
        res = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, seed=1)
        assert len(res.seeds) == 5


class TestCollectionMisuse:
    def test_flattened_view_consistent_after_interleaved_use(self):
        """Alternating reads and appends must never serve a stale cache
        (the EstimateTheta loop does exactly this)."""
        coll = SortedRRRCollection(10)
        coll.append(np.array([1, 2], np.int32))
        flat1, _, _ = coll.flattened()
        counters1 = coll.counters()
        coll.append(np.array([2, 3], np.int32))
        flat2, _, _ = coll.flattened()
        counters2 = coll.counters()
        assert len(flat2) == 4
        assert counters2[2] == counters1[2] + 1

    def test_generator_program_type_error(self):
        """A non-generator 'program' fails loudly, not silently."""

        def not_a_generator(rank, size):
            return rank  # forgot to yield

        with pytest.raises((TypeError, AttributeError)):
            run_spmd(2, not_a_generator)

    def test_generators_closed_after_injected_abort(self):
        """An aborted SPMD run delivers GeneratorExit to every rank
        program — no dangling generators holding buffers."""
        closed = []

        def program(rank, size):
            try:
                yield Allreduce(np.array([rank]))
                yield Allreduce(np.array([rank]))
            finally:
                closed.append(rank)

        with pytest.raises(RankFailedError):
            run_spmd(3, program, faults=_plan("crash:1@1"))
        assert sorted(closed) == [0, 1, 2]


def _plan(spec):
    from repro.mpi import FaultPlan

    return FaultPlan.parse(spec)


def _dist(graph, **kw):
    kw.setdefault("k", 4)
    kw.setdefault("eps", 0.5)
    kw.setdefault("num_nodes", 3)
    kw.setdefault("seed", 2)
    kw.setdefault("theta_cap", 120)
    return imm_dist(graph, **kw)


class TestAbortPolicy:
    def test_crash_propagates_by_default(self, ba_graph):
        with pytest.raises(RankFailedError, match="rank 1"):
            _dist(ba_graph, fault_plan="crash:1@3")

    def test_transient_propagates_by_default(self, ba_graph):
        with pytest.raises(TransientCommError):
            _dist(ba_graph, fault_plan="transient:@2")

    def test_unknown_policy_rejected(self, ba_graph):
        with pytest.raises(ValueError, match="policy"):
            _dist(ba_graph, policy="hope")


class TestRetryPolicy:
    def test_transient_healed_and_metered(self, ba_graph):
        base = _dist(ba_graph)
        res = _dist(ba_graph, fault_plan="transient:@2x2", policy="retry")
        np.testing.assert_array_equal(base.seeds, res.seeds)
        assert res.theta == base.theta
        rec = res.extra["recovery"]
        assert rec["retries"] == 2
        calls, _ = res.extra["comm_by_label"]["retry"]
        assert calls == 2
        assert res.extra["recovery_seconds"] > 0

    def test_exhaustion_surfaces_typed_error(self, ba_graph):
        with pytest.raises(TransientCommError, match="still failing"):
            _dist(
                ba_graph, fault_plan="transient:@2x9", policy="retry",
                max_retries=2,
            )


class TestRespawnPolicy:
    def test_bitexact_and_work_conserved(self, ba_graph):
        base = _dist(ba_graph)
        res = _dist(ba_graph, fault_plan="crash:2@4", policy="respawn")
        np.testing.assert_array_equal(base.seeds, res.seeds)
        assert res.theta == base.theta
        assert res.extra["coverage_history"] == base.extra["coverage_history"]
        assert not res.extra["degraded"]
        rec = res.extra["recovery"]
        assert rec["respawns"] == 1 and rec["respawned_ranks"] == [2]
        # first-time sampling work is identical; the respawn surcharge
        # is carried separately in the modeled time
        assert res.num_samples == base.num_samples
        assert res.extra["recovery_seconds"] > 0

    def test_phase_addressed_crash(self, ba_graph):
        base = _dist(ba_graph)
        res = _dist(
            ba_graph, fault_plan="crash:0@phase=SelectSeeds", policy="respawn"
        )
        np.testing.assert_array_equal(base.seeds, res.seeds)
        assert res.extra["recovery"]["respawns"] == 1

    def test_leapfrog_scheme_can_respawn(self, ba_graph):
        # generic history replay does not need counter-addressable RNG
        base = _dist(ba_graph, rng_scheme="leapfrog")
        res = _dist(
            ba_graph, rng_scheme="leapfrog", fault_plan="crash:1@3",
            policy="respawn",
        )
        np.testing.assert_array_equal(base.seeds, res.seeds)


class TestShrinkPolicy:
    def test_late_crash_degrades_honestly(self, ba_graph):
        res = _dist(
            ba_graph, fault_plan="crash:2@phase=SelectSeeds", policy="shrink"
        )
        ex = res.extra
        assert ex["degraded"]
        assert ex["alive_ranks"] == [0, 1]
        assert ex["theta_effective"] + ex["lost_samples"] == res.theta
        assert ex["epsilon_effective"] > res.epsilon
        # the work meters account exactly for the surviving samples
        assert res.num_samples == ex["theta_effective"]

    def test_early_crash_redeals_losslessly(self, ba_graph):
        base = _dist(ba_graph)
        res = _dist(ba_graph, fault_plan="crash:0@0", policy="shrink")
        assert not res.extra["degraded"]
        np.testing.assert_array_equal(base.seeds, res.seeds)
        assert res.theta == base.theta

    def test_oom_absorbed_by_shrink(self, ba_graph):
        res = _dist(ba_graph, fault_plan="oom:1@3", policy="shrink")
        assert res.extra["recovery"]["dead_ranks"] == [1]
        assert 1 not in res.extra["alive_ranks"]

    def test_leapfrog_shrink_rejected(self, ba_graph):
        with pytest.raises(ValueError, match="per-sample"):
            _dist(
                ba_graph, rng_scheme="leapfrog", fault_plan="crash:0@0",
                policy="shrink",
            )


class TestStragglerPricing:
    def test_straggler_slows_but_does_not_change_output(self, ba_graph):
        base = _dist(ba_graph)
        res = _dist(ba_graph, fault_plan="straggler:1x8")
        np.testing.assert_array_equal(base.seeds, res.seeds)
        assert res.breakdown.total > base.breakdown.total
