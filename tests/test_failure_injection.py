"""Failure-injection tests: how the runtime behaves when things break."""

import numpy as np
import pytest

from repro.mpi import Allreduce, SimulatedOOMError, imm_dist, run_spmd
from repro.sampling import SortedRRRCollection


class TestSpmdFailurePropagation:
    def test_rank_exception_aborts_job(self):
        """A raising rank kills the whole SPMD run (like mpirun abort),
        not just its own generator."""

        def program(rank, size):
            if rank == 2:
                raise RuntimeError("rank 2 exploded")
            yield Allreduce(np.array([rank]))
            return rank

        with pytest.raises(RuntimeError, match="rank 2 exploded"):
            run_spmd(4, program)

    def test_exception_after_collective(self):
        def program(rank, size):
            total = yield Allreduce(np.array([1]))
            if rank == 0 and int(total[0]) == 3:
                raise ValueError("post-collective failure")
            return rank

        with pytest.raises(ValueError, match="post-collective"):
            run_spmd(3, program)

    def test_oom_aborts_distributed_run_cleanly(self, ba_graph):
        """A simulated OOM inside one rank's sampling surfaces as the
        typed error (the experiment harness records a missing point)."""
        with pytest.raises(SimulatedOOMError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=4, seed=1, mem_per_node=10)

    def test_run_usable_after_failure(self, ba_graph):
        """A failed run leaves no residue: the same call with a sane
        limit succeeds afterwards (no global state)."""
        with pytest.raises(SimulatedOOMError):
            imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, seed=1, mem_per_node=10)
        res = imm_dist(ba_graph, k=5, eps=0.5, num_nodes=2, seed=1)
        assert len(res.seeds) == 5


class TestCollectionMisuse:
    def test_flattened_view_consistent_after_interleaved_use(self):
        """Alternating reads and appends must never serve a stale cache
        (the EstimateTheta loop does exactly this)."""
        coll = SortedRRRCollection(10)
        coll.append(np.array([1, 2], np.int32))
        flat1, _, _ = coll.flattened()
        counters1 = coll.counters()
        coll.append(np.array([2, 3], np.int32))
        flat2, _, _ = coll.flattened()
        counters2 = coll.counters()
        assert len(flat2) == 4
        assert counters2[2] == counters1[2] + 1

    def test_generator_program_type_error(self):
        """A non-generator 'program' fails loudly, not silently."""

        def not_a_generator(rank, size):
            return rank  # forgot to yield

        with pytest.raises((TypeError, AttributeError)):
            run_spmd(2, not_a_generator)
