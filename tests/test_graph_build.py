"""Tests for the edge-list builders (repro.graph.build)."""

import numpy as np
import pytest

from repro.graph import from_edge_list, from_edges


class TestFromEdges:
    def test_basic(self):
        g = from_edges(3, np.array([0, 1]), np.array([1, 2]), 0.5)
        assert g.m == 2
        assert g.out_edge_probs(0).tolist() == [0.5]

    def test_neighbors_sorted_regardless_of_input_order(self):
        g = from_edges(4, np.array([0, 0, 0]), np.array([3, 1, 2]))
        assert g.out_neighbors(0).tolist() == [1, 2, 3]

    def test_self_loops_dropped(self):
        g = from_edges(3, np.array([0, 1, 2]), np.array([0, 2, 2]))
        assert g.m == 1
        assert g.has_edge(1, 2)

    def test_duplicates_deduped_keeping_first(self):
        g = from_edges(
            3,
            np.array([0, 0, 0]),
            np.array([1, 1, 2]),
            np.array([0.9, 0.1, 0.5]),
        )
        assert g.m == 2
        probs = {(u, v): p for u, v, p in g.edges()}
        assert probs[(0, 1)] == 0.9  # first occurrence wins

    def test_dedup_disabled_raises_nothing_but_keeps_edges(self):
        # The CSR itself can hold parallel edges when dedup is off.
        g = from_edges(3, np.array([0, 0]), np.array([1, 1]), dedup=False)
        assert g.m == 2

    def test_default_prob_is_tang_constant(self):
        g = from_edges(3, np.array([0]), np.array([1]))
        assert g.out_edge_probs(0).tolist() == [0.1]

    def test_scalar_prob_broadcast(self):
        g = from_edges(3, np.array([0, 1]), np.array([1, 2]), 0.25)
        assert set(p for _, _, p in g.edges()) == {0.25}

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([0]), np.array([2]))
        with pytest.raises(ValueError):
            from_edges(2, np.array([-1]), np.array([0]))

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            from_edges(2, np.array([0]), np.array([1]), 1.5)
        with pytest.raises(ValueError):
            from_edges(2, np.array([0]), np.array([1]), -0.1)

    def test_ragged_arrays_rejected(self):
        with pytest.raises(ValueError):
            from_edges(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(ValueError):
            from_edges(3, np.array([0, 1]), np.array([1, 2]), np.array([0.5]))

    def test_empty_graph(self):
        g = from_edges(4, np.empty(0, np.int64), np.empty(0, np.int64))
        assert g.n == 4 and g.m == 0
        assert g.out_neighbors(0).tolist() == []

    def test_in_out_probability_consistency(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 50, 300)
        dst = rng.integers(0, 50, 300)
        prob = rng.random(300)
        g = from_edges(50, src, dst, prob)
        forward = {(u, v): p for u, v, p in g.edges()}
        for v in range(g.n):
            for u, p in zip(g.in_neighbors(v).tolist(), g.in_edge_probs(v).tolist()):
                assert forward[(u, v)] == p


class TestFromEdgeList:
    def test_two_and_three_field_tuples(self):
        g = from_edge_list(3, [(0, 1), (1, 2, 0.7)], default_prob=0.2)
        probs = {(u, v): p for u, v, p in g.edges()}
        assert probs[(0, 1)] == 0.2
        assert probs[(1, 2)] == 0.7

    def test_malformed_tuple_rejected(self):
        with pytest.raises(ValueError):
            from_edge_list(3, [(0, 1, 0.5, 9)])

    def test_accepts_generator_input(self):
        g = from_edge_list(4, ((i, i + 1) for i in range(3)))
        assert g.m == 3
