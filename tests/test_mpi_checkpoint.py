"""Tests for checkpoint state and ownership algebra (repro.mpi.checkpoint)."""

import numpy as np
import pytest

from repro.mpi import (
    DistCheckpoint,
    imm_dist,
    initial_deals,
    live_count,
    owned_indices,
    rebuild_partition,
    shrink_deals,
)
from repro.mpi.checkpoint import _epochs
from repro.sampling import BatchedRRRSampler, SortedRRRCollection


class TestDealsAlgebra:
    def test_initial_deals_is_one_strided_epoch(self):
        assert initial_deals(4) == ((0, (0, 1, 2, 3)),)
        with pytest.raises(ValueError):
            initial_deals(0)

    def test_owned_indices_stride(self):
        deals = initial_deals(3)
        assert owned_indices(deals, 1, 0, 10).tolist() == [1, 4, 7]
        assert owned_indices(deals, 0, 4, 10).tolist() == [6, 9]
        assert owned_indices(deals, 2, 0, 0).tolist() == []

    def test_ownership_partitions_every_index(self):
        deals = shrink_deals(initial_deals(4), 7, (0, 2, 3))
        claimed = np.concatenate(
            [owned_indices(deals, r, 0, 30) for r in range(4)]
        )
        assert sorted(claimed.tolist()) == list(range(30))

    def test_shrink_freezes_history_and_redeals_tail(self):
        deals = shrink_deals(initial_deals(4), 8, (0, 2, 3))
        assert deals == ((0, (0, 1, 2, 3)), (8, (0, 2, 3)))
        # dead rank 1 keeps only its pre-cursor indices
        assert owned_indices(deals, 1, 0, 20).tolist() == [1, 5]
        # the tail is strided over the survivors: owner of j is
        # ranks[j % 3] with ranks = (0, 2, 3), so 0 owns 9 and 12 here
        assert owned_indices(deals, 0, 8, 14).tolist() == [9, 12]

    def test_shrink_at_zero_loses_nothing(self):
        deals = shrink_deals(initial_deals(4), 0, (0, 2))
        assert deals == ((0, (0, 2)),)
        assert live_count(deals, (0, 2), 100) == 100

    def test_shrink_to_zero_ranks_rejected(self):
        with pytest.raises(ValueError, match="zero ranks"):
            shrink_deals(initial_deals(2), 5, ())

    def test_live_count(self):
        deals = initial_deals(4)
        assert live_count(deals, (0, 1, 2, 3), 100) == 100  # fast path
        # rank 1 owned indices 1, 5, 9, ... -> 3 of the first 10 are dead
        assert live_count(deals, (0, 2, 3), 10) == 7
        shrunk = shrink_deals(deals, 10, (0, 2, 3))
        assert live_count(shrunk, (0, 2, 3), 10) == 7
        # everything past the cursor is owned by survivors again
        assert live_count(shrunk, (0, 2, 3), 22) == 19

    def test_epoch_clipping(self):
        deals = ((0, (0, 1)), (6, (0,)))
        segs = list(_epochs(deals, 4, 9))
        assert segs == [(4, 6, (0, 1)), (6, 9, (0,))]


class TestDistCheckpoint:
    @staticmethod
    def _make(**over):
        base = dict(
            stage="estimate",
            round=2,
            next_global=40,
            lb=123.5,
            theta=None,
            rounds_done=1,
            coverage_history=((20, 0.25),),
            deals=((0, (0, 1)),),
            alive=(0, 1),
            lost_samples=0,
            num_nodes=2,
            seed=7,
            k=5,
            eps=0.5,
            model="IC",
            n=300,
            rng_scheme="per-sample",
        )
        base.update(over)
        return DistCheckpoint(**base)

    def test_dict_round_trip(self):
        ck = self._make(stage="final", theta=160)
        assert DistCheckpoint.from_dict(ck.to_dict()) == ck

    def test_json_serializable(self):
        import json

        text = json.dumps(self._make().to_dict())
        assert DistCheckpoint.from_dict(json.loads(text)) == self._make()

    def test_key_identifies_state(self):
        assert self._make().key() == self._make().key()
        assert self._make().key() != self._make(next_global=41).key()

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            self._make(stage="halfway")


class TestRebuildPartition:
    def test_matches_direct_sampling(self, ba_graph):
        deals = initial_deals(3)
        seed = 11
        coll, js, per = rebuild_partition(ba_graph, "IC", deals, 1, 30, seed)
        assert js.tolist() == owned_indices(deals, 1, 0, 30).tolist()
        ref = SortedRRRCollection(ba_graph.n)
        ref_per = BatchedRRRSampler(ba_graph, "IC").sample_into(ref, js, seed)
        a_flat, a_indptr, _ = coll.flattened()
        b_flat, b_indptr, _ = ref.flattened()
        np.testing.assert_array_equal(a_flat, b_flat)
        np.testing.assert_array_equal(a_indptr, b_indptr)
        np.testing.assert_array_equal(per, ref_per)

    def test_empty_slice(self, ba_graph):
        coll, js, per = rebuild_partition(
            ba_graph, "IC", ((0, (0,)),), 1, 30, seed=0
        )
        assert len(coll) == 0 and len(js) == 0 and len(per) == 0


class TestImmDistCheckpointing:
    def test_sink_collects_deduped_trail(self, ba_graph):
        sink = []
        imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            checkpoint_sink=sink,
        )
        keys = [(c["stage"], c["round"], c["next_global"]) for c in sink]
        assert len(keys) == len(set(keys))  # deduplicated
        assert keys[0][0] == "estimate" and keys[0][2] == 0
        assert sink[-1]["stage"] == "final"
        assert sink[-1]["theta"] == 120

    def test_resume_from_final_checkpoint_is_bitexact(self, ba_graph):
        sink = []
        base = imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            checkpoint_sink=sink,
        )
        resumed = imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            resume_from=sink[-1],
        )
        np.testing.assert_array_equal(base.seeds, resumed.seeds)
        assert base.theta == resumed.theta
        assert (
            base.extra["coverage_history"] == resumed.extra["coverage_history"]
        )

    def test_resume_from_estimate_checkpoint_is_bitexact(self, ba_graph):
        sink = []
        base = imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            checkpoint_sink=sink,
        )
        mid = next(c for c in sink if c["stage"] == "estimate")
        resumed = imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            resume_from=mid,
        )
        np.testing.assert_array_equal(base.seeds, resumed.seeds)
        assert base.theta == resumed.theta

    def test_incompatible_resume_rejected(self, ba_graph):
        sink = []
        imm_dist(
            ba_graph, k=4, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
            checkpoint_sink=sink,
        )
        with pytest.raises(ValueError, match="checkpoint"):
            imm_dist(
                ba_graph, k=4, eps=0.5, num_nodes=2, seed=4, theta_cap=120,
                resume_from=sink[-1],
            )
        with pytest.raises(ValueError, match="checkpoint"):
            imm_dist(
                ba_graph, k=5, eps=0.5, num_nodes=2, seed=3, theta_cap=120,
                resume_from=sink[-1],
            )
