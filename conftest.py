"""Pytest bootstrap: make `src/` importable without installation.

The canonical install is ``pip install -e .`` (or, in offline
environments lacking the ``wheel`` package, ``python setup.py develop``).
This shim additionally lets ``pytest tests/`` and ``pytest benchmarks/``
run straight from a source checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
